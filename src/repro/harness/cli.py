"""Command-line interface: regenerate any paper table or figure.

Examples::

    waffle-repro table1
    waffle-repro table4 --attempts 15 --budget 50
    waffle-repro table5 --apps netmq mqttnet
    waffle-repro detect --bug Bug-11 --tool wafflebasic
    waffle-repro all --attempts 5 --out results.txt
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, List, Optional

from .. import obs
from ..obs import eventbus
from ..apps import all_bugs, bug_workload, get_app
from ..baselines import StressRunner, WaffleBasic
from ..core.config import DEFAULT_CONFIG
from ..core.detector import Waffle
from . import experiments, faults, supervisor, tables
from .cache import GLOBAL_STATS


def _emit(text: str, out: Optional[str]) -> None:
    if out:
        with open(out, "a") as fp:
            fp.write(text + "\n\n")
    print(text)
    print()


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment rows to JSON-safe values."""
    from ..sim.instrument import Location

    if isinstance(value, Location):
        return value.site
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Field-by-field (not dataclasses.asdict) so nested values still
        # pass through this dispatcher, e.g. Locations become site
        # strings rather than {"site": ...} dicts.
        return {
            f.name: _to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_to_jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _emit_rows(name: str, rows: Any, text: str, args) -> None:
    """Emit rendered text, or machine-readable JSON with --json."""
    if getattr(args, "json", False):
        payload = json.dumps({name: _to_jsonable(rows)}, indent=2, sort_keys=True)
        _emit(payload, args.out)
    else:
        _emit(text, args.out)


def cmd_table1(args) -> None:
    _emit(tables.design_matrix(), args.out)


def cmd_table2(args) -> None:
    rows = experiments.table2_sites(
        apps=args.apps, seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir
    )
    _emit_rows("table2", rows, tables.render_table2(rows), args)


def cmd_figure2(args) -> None:
    points = experiments.figure2_timing_conditions(seed=args.seed, jobs=args.jobs)
    _emit_rows("figure2", points, tables.render_figure2(points), args)


def cmd_figure5(args) -> None:
    points = experiments.figure5_interference_window(seed=args.seed, jobs=args.jobs)
    _emit_rows("figure5", points, tables.render_figure5(points), args)


def cmd_overlap(args) -> None:
    rows = experiments.overlap_ratios(
        apps=args.apps, seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir
    )
    _emit_rows("overlap", rows, tables.render_overlap(rows), args)


def cmd_dynamic(args) -> None:
    rows, overall = experiments.dynamic_instances(
        apps=args.apps, seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir
    )
    _emit(tables.render_dynamic_instances(rows, overall), args.out)


def cmd_table4(args) -> None:
    rows = experiments.table4_detection(
        attempts=args.attempts,
        budget=args.budget,
        bugs=args.bugs,
        base_seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    _emit_rows("table4", rows, tables.render_table4(rows), args)


def cmd_table5(args) -> None:
    rows = experiments.table5_overhead(
        apps=args.apps, seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir
    )
    _emit_rows("table5", rows, tables.render_table5(rows), args)


def cmd_table6(args) -> None:
    rows = experiments.table6_delays(
        apps=args.apps, seed=args.seed, jobs=args.jobs, cache_dir=args.cache_dir
    )
    _emit_rows("table6", rows, tables.render_table6(rows), args)


def cmd_table7(args) -> None:
    rows = experiments.table7_ablations(
        attempts=args.attempts,
        budget=args.budget,
        base_seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    _emit_rows("table7", rows, tables.render_table7(rows), args)


def cmd_related(args) -> None:
    rows = experiments.related_tools_comparison(
        bugs=args.bugs,
        budget=args.budget,
        base_seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    _emit_rows("related", rows, tables.render_related_tools(rows), args)


def cmd_stress(args) -> None:
    rows = experiments.stress_control(
        runs=args.budget, bugs=args.bugs, base_seed=args.seed, jobs=args.jobs
    )
    _emit_rows("stress", rows, tables.render_stress(rows), args)


def cmd_fuzz(args) -> int:
    """Oracle-verify a range of generated workloads (property suite)."""
    from . import fuzz as fuzz_mod

    try:
        start_text, stop_text = args.seed_range.split(":", 1)
        start, stop = int(start_text), int(stop_text)
    except ValueError:
        raise SystemExit("--seed-range expects START:STOP, got %r" % args.seed_range)
    if stop <= start:
        raise SystemExit("--seed-range: empty range %r" % args.seed_range)
    config = _apply_hb_engine(DEFAULT_CONFIG.with_seed(args.seed), args)
    rows = fuzz_mod.fuzz_range(
        start,
        stop,
        config=config,
        budget=args.budget,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        check_replay=not args.no_replay,
    )
    digest = fuzz_mod.fuzz_digest(rows)
    _emit_rows(
        "fuzz", {"rows": rows, "digest": digest}, fuzz_mod.render_fuzz(rows, digest), args
    )
    failures = [r for r in rows if not r["ok"]]
    if failures and args.shrink_dir:
        for path in fuzz_mod.shrink_failures(failures, config, args.budget, args.shrink_dir):
            print("regression fixture written: %s" % path)
    if getattr(args, "dashboard", False):
        target = args.obs_dir or args.events_dir or "waffle-dashboard"
        for path in _write_dashboard_artifacts(target, rows=rows, label="fuzz"):
            print("dashboard artifact written: %s" % path)
    return 1 if failures else 0


def _write_dashboard_artifacts(
    directory: str,
    rows: Optional[List[dict]] = None,
    bench_paths: Optional[List[Any]] = None,
    deterministic: bool = False,
    label: str = "campaign",
    dashboard_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> List[str]:
    """Render ``dashboard.html`` + ``metrics.prom`` and append one
    quality row to ``timeseries.jsonl`` under ``directory``.

    Flushes telemetry and the event bus first so same-process campaigns
    (``fuzz --dashboard``) see their own data on disk; every input is
    optional, so the artifacts always render (with empty sections
    standing in for absent sources)."""
    from ..obs import campaign as campaign_mod
    from ..obs import dashboard as dashboard_mod
    from ..obs import openmetrics as openmetrics_mod
    from ..obs import quality as quality_mod
    from ..obs import timeseries as timeseries_mod
    from ..obs.report import load_obs_dir

    eventbus.flush()
    obs.flush()
    os.makedirs(directory, exist_ok=True)
    view, streams = campaign_mod.load_view(directory)
    if not streams:
        view = None
    data = load_obs_dir(directory)
    snapshot = data.metrics or None
    quality = quality_mod.build_quality(
        view=view, rows=rows, obs_data=data, obs_dir=directory
    )
    row = timeseries_mod.build_row(
        view=view, quality=quality, bench_paths=bench_paths or (), label=label
    )
    series_path = timeseries_mod.append_row(directory, row)
    trend_rows, _trend_warnings = timeseries_mod.load_series(directory)
    html_path = Path(dashboard_out or os.path.join(directory, "dashboard.html"))
    html_path.write_text(
        dashboard_mod.render_dashboard(
            view=view, quality=quality, snapshot=snapshot, trend_rows=trend_rows
        )
    )
    prom_path = Path(metrics_out or os.path.join(directory, "metrics.prom"))
    prom_path.write_text(
        openmetrics_mod.render_openmetrics(
            snapshot=snapshot, view=view, quality=quality,
            deterministic_only=deterministic,
        )
    )
    return [str(html_path), str(prom_path), str(series_path)]


def _apply_hb_engine(config, args):
    """Apply the shared --hb-engine switch to a config, when given."""
    engine = getattr(args, "hb_engine", None)
    if engine:
        from ..core.tree_clock import HB_ENGINES

        if engine not in HB_ENGINES:
            raise SystemExit(
                "--hb-engine: invalid choice %r (choose from %s)"
                % (engine, ", ".join(HB_ENGINES))
            )
        if engine != config.hb_engine:
            from dataclasses import replace

            config = replace(config, hb_engine=engine)
    return config


def cmd_detect(args) -> None:
    if args.bug:
        test = bug_workload(args.bug)
    else:
        test = get_app(args.app).test(args.test)
    config = _apply_hb_engine(DEFAULT_CONFIG.with_seed(args.seed), args)
    if getattr(args, "dossier_dir", None) and not obs.flightrec.active():
        # Dossiers need the flight recorder's provenance; install it
        # before the driver constructs its instrumented objects.
        obs.flightrec.install()
    driver = {"waffle": Waffle, "wafflebasic": WaffleBasic, "stress": StressRunner}[args.tool](
        config
    )
    outcome = driver.detect(test, max_detection_runs=args.budget)
    print("tool=%s workload=%s" % (outcome.tool, outcome.workload))
    for record in outcome.runs:
        print(
            "  run %d (%s): %.2fms, %d delays (%.1fms), crashed=%s%s"
            % (
                record.index,
                record.kind,
                record.virtual_time_ms,
                record.delays_injected,
                record.total_delay_ms,
                record.crashed,
                " TIMEOUT" if record.timed_out else "",
            )
        )
    if outcome.bug_found:
        print("BUG EXPOSED after %s runs:" % outcome.runs_to_expose)
        print("  " + outcome.reports[0].summary())
    else:
        print("no bug exposed within %d runs" % args.budget)
    if getattr(args, "dossier_dir", None):
        from ..obs import coverage as coverage_mod
        from ..obs import dossier as dossier_mod

        for built in getattr(outcome, "dossiers", []):
            path = dossier_mod.write_dossier(built, args.dossier_dir)
            print(
                "dossier written: %s (replay with: waffle-repro replay %s)"
                % (path, path)
            )
        if getattr(outcome, "coverage", None) is not None:
            path = coverage_mod.write_coverage(outcome.coverage, args.dossier_dir)
            print("coverage written: %s" % path)


def _resolve_workload(name: str):
    """Find a test case by name across all applications (for replay)."""
    from ..apps import all_apps

    for app in all_apps().values():
        for test in app.tests:
            if test.name == name:
                return test
    # Generated workloads (including the oracle's defused variants) are
    # rebuilt from their name alone: gen-<seed>:workload[+defused[...]].
    from ..gen import registry as gen_registry

    test = gen_registry.resolve_test(name)
    if test is not None:
        return test
    raise SystemExit("workload %r not found in any registered application" % name)


def cmd_replay(args) -> int:
    """Deterministically re-execute a dossier's minimal schedule."""
    from ..obs import dossier as dossier_mod

    dossier = dossier_mod.load_dossier(args.dossier)
    test = _resolve_workload(dossier.workload)
    print(
        "replaying %s :: %s (%s @ %s, %d delay(s), %s)"
        % (
            dossier.tool,
            dossier.workload,
            dossier.error_type,
            dossier.fault_site,
            len(dossier.schedule.get("delays", [])),
            "minimized" if dossier.minimized else "full schedule",
        )
    )
    outcome, reproduced = dossier_mod.replay_dossier(dossier, test.build)
    print(
        "  outcome: crashed=%s error=%s site=%s (%d delay(s) injected, %.2f virtual ms)"
        % (
            outcome.crashed,
            outcome.error_type,
            outcome.fault_site,
            outcome.delays_injected,
            outcome.virtual_time_ms,
        )
    )
    if reproduced:
        print("REPRODUCED: same error type at the same fault location")
        return 0
    print("NOT REPRODUCED: outcome differs from the dossier's bug report")
    return 1


def cmd_apps(args) -> None:
    """List the benchmark applications and their test suites."""
    from ..apps import all_apps

    for app in all_apps().values():
        bugs = ", ".join(b.bug_id for b in app.known_bugs) or "none"
        print(
            "%-18s %-20s %3d tests   bugs: %s"
            % (app.name, app.display_name, len(app.tests), bugs)
        )
        if args.verbose:
            for test in app.tests:
                print("    %s" % test.name)


def cmd_bugs(args) -> None:
    """List the 18 Table 4 bugs with their metadata."""
    from ..apps import all_bugs

    for bug in all_bugs():
        print(
            "%-7s %-17s issue %-5s %-16s %-9s test=%s"
            % (
                bug.bug_id,
                bug.app,
                bug.issue_id,
                bug.kind,
                "known" if bug.previously_known else "unknown",
                bug.test_name,
            )
        )
        if args.verbose:
            print("    %s" % bug.description)


def cmd_trace(args) -> None:
    """Record a delay-free trace of one test; dump stats and optionally
    the JSONL events and the analyzed injection plan."""
    from ..core.analyzer import analyze_trace
    from ..core.persistence import save_plan
    from .runner import run_recording

    test = bug_workload(args.bug) if args.bug else get_app(args.app).test(args.test)
    config = _apply_hb_engine(DEFAULT_CONFIG.with_seed(args.seed), args)
    run, trace = run_recording(test, config, seed=args.seed)
    print("trace of %r: %d events, %.2f virtual ms" % (test.name, len(trace), run.virtual_time_ms))
    print("  threads: %d (%s)" % (
        len(trace.thread_names),
        ", ".join(sorted(trace.thread_names.values())[:8]),
    ))
    print("  MemOrder sites: %d, TSV sites: %d" % (
        len(trace.static_sites(memorder=True)),
        len(trace.static_sites(memorder=False)),
    ))
    plan = analyze_trace(trace, config)
    print("  candidate pairs: %d, injection sites: %d, interference pairs: %d, "
          "pruned fork-ordered: %d" % (
        plan.stats.candidate_pairs,
        plan.stats.injection_sites,
        plan.stats.interference_pairs,
        plan.stats.pruned_parent_child,
    ))
    for site in sorted(plan.delay_sites):
        print("    delay %-50s %.2f ms (x%.2f)" % (
            site, plan.delay_lengths.get(site, 0.0), config.alpha))
    if args.save_trace:
        with open(args.save_trace, "w") as fp:
            count = trace.dump(fp)
        print("  wrote %d events to %s" % (count, args.save_trace))
    if args.save_plan:
        save_plan(plan, args.save_plan)
        print("  wrote injection plan to %s" % args.save_plan)


def _bench_history(values: Optional[List[str]]) -> List[Path]:
    """Expand --bench arguments: files pass through, directories glob
    their ``BENCH_*.json`` snapshots (lexicographic = history order)."""
    out: List[Path] = []
    for value in values or []:
        path = Path(value)
        if path.is_dir():
            out.extend(sorted(path.glob("BENCH_*.json")))
        else:
            out.append(path)
    return out


def cmd_obs(args) -> int:
    """Aggregate an obs directory: digest report, coverage observatory,
    bug dossiers, Chrome trace export, or campaign analytics."""
    from ..obs.report import load_obs_dir, render_report, write_chrome_trace

    if args.action == "dashboard":
        for path in _write_dashboard_artifacts(
            args.obs_path,
            bench_paths=_bench_history(args.bench),
            deterministic=args.deterministic,
            label="obs-dashboard",
            dashboard_out=args.dashboard_out,
            metrics_out=args.metrics_out,
        ):
            print("dashboard artifact written: %s" % path)
        return 0
    if args.action == "metrics":
        from ..obs import campaign as campaign_mod
        from ..obs import openmetrics as openmetrics_mod
        from ..obs import quality as quality_mod

        view, streams = campaign_mod.load_view(args.obs_path)
        if not streams:
            view = None
        data = load_obs_dir(args.obs_path)
        quality = quality_mod.build_quality(
            view=view, obs_data=data, obs_dir=args.obs_path
        )
        text = openmetrics_mod.render_openmetrics(
            snapshot=data.metrics or None,
            view=view,
            quality=quality,
            deterministic_only=args.deterministic,
        )
        target = args.metrics_out or os.path.join(args.obs_path, "metrics.prom")
        with open(target, "w") as fp:
            fp.write(text)
        print("openmetrics export written to %s" % target)
        return 0
    if args.action == "trend":
        from ..obs import timeseries as timeseries_mod

        rows, warnings = timeseries_mod.load_series(args.obs_path)
        text = timeseries_mod.render_trend(rows)
        if warnings:
            text += "\n" + "\n".join("  warning: %s" % w for w in warnings)
        _emit(text, args.out)
        return 0
    if args.action == "analytics":
        from ..obs import campaign as campaign_mod

        view, streams = campaign_mod.load_view(args.obs_path)
        if not streams:
            print("no event streams under %s" % args.obs_path)
            return 1
        data = load_obs_dir(args.obs_path) if os.path.isdir(args.obs_path) else None
        _emit(
            campaign_mod.render_analytics(
                view,
                obs_data=data,
                bench_paths=_bench_history(args.bench),
                source=args.obs_path,
            ),
            args.out,
        )
        return 0
    if args.action == "coverage":
        from ..obs import coverage as coverage_mod

        records = coverage_mod.load_coverage_dir(args.obs_path)
        if not records:
            print("no coverage records under %s" % args.obs_path)
            return 1
        merged = coverage_mod.merge_coverage(records)
        _emit(
            coverage_mod.render_coverage(
                merged if len(records) > 1 else records[0],
                per_session=records if len(records) > 1 else None,
            ),
            args.out,
        )
        return 0
    if args.action == "dossier":
        from ..obs import dossier as dossier_mod

        paths = sorted(Path(args.obs_path).glob("dossier-*.json"))
        if not paths:
            print("no dossiers under %s" % args.obs_path)
            return 1
        for path in paths:
            dossier = dossier_mod.load_dossier(path)
            _emit(dossier_mod.render_dossier(dossier), args.out)
            if args.html:
                html_path = path.with_suffix(".html")
                html_path.write_text(dossier_mod.render_swimlane_html(dossier))
                print("swimlane written to %s" % html_path)
        return 0
    data = load_obs_dir(args.obs_path)
    if args.action == "chrome":
        out = args.trace_out or os.path.join(args.obs_path, "trace.json")
        count = write_chrome_trace(data, out)
        print("wrote %d trace events to %s (open in chrome://tracing or Perfetto)" % (count, out))
        return 0
    _emit(render_report(data, max_runs=args.max_runs), args.out)
    return 0


def cmd_campaign(args) -> int:
    """Inspect or merge campaign event streams (``events-*.jsonl``)."""
    from ..obs import campaign as campaign_mod

    streams = []
    for path in args.paths:
        streams.extend(eventbus.load_streams(path))
    source = args.paths[0] if len(args.paths) == 1 else ", ".join(args.paths)
    if not streams:
        print("no event streams under %s" % source)
        return 1
    if args.action == "merge":
        merged_out = getattr(args, "merged_out", None)
        if not merged_out:
            raise SystemExit("campaign merge requires --merged-out PATH")
        count = eventbus.write_merged(streams, merged_out)
        print(
            "merged %d event(s) from %d stream(s) into %s"
            % (count, len(streams), merged_out)
        )
        return 0
    view = campaign_mod.fold_events(eventbus.merge_events(streams))
    for stream in streams:
        view.warnings.extend(stream.warnings)
        view.warnings.extend(stream.parse_errors)
    _emit(
        campaign_mod.render_status(
            view, source=source, max_cells=getattr(args, "max_cells", 8)
        ),
        args.out,
    )
    return 0


def cmd_campaign_run(args) -> int:
    """Coordinate a fleet campaign (see :mod:`repro.harness.fleet`)."""
    from . import fleet as fleet_mod

    inner = list(args.inner)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        raise SystemExit(
            "campaign run requires an inner command after --, "
            "e.g.: campaign run --fleet-dir DIR -- fuzz --seed-range 0:40"
        )
    return fleet_mod.run_campaign(
        args.fleet_dir,
        inner,
        workers=args.workers,
        lease_ttl_s=args.lease_ttl,
        poll_s=args.poll,
        retries=args.retries,
        min_workers=args.min_workers,
        drain_timeout_s=args.drain_timeout,
    )


def cmd_campaign_worker(args) -> int:
    """Join a fleet campaign as one worker process."""
    from . import fleet as fleet_mod

    return fleet_mod.run_worker(
        args.fleet_dir, wait_s=args.wait, worker_id=args.worker_id
    )


def cmd_all(args) -> None:
    for command in (
        cmd_table1,
        cmd_table2,
        cmd_figure2,
        cmd_figure5,
        cmd_overlap,
        cmd_dynamic,
        cmd_table4,
        cmd_table5,
        cmd_table6,
        cmd_table7,
        cmd_stress,
    ):
        command(args)


def build_parser() -> argparse.ArgumentParser:
    # SUPPRESS keeps a subcommand's (unset) copy of a shared option
    # from clobbering a value given before the subcommand.
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="base random seed"
    )
    shared.add_argument(
        "--out", type=str, default=argparse.SUPPRESS, help="append output to this file"
    )
    shared.add_argument(
        "--json",
        action="store_true",
        default=argparse.SUPPRESS,
        help="emit machine-readable JSON instead of rendered tables",
    )
    shared.add_argument(
        "--hb-engine",
        type=str,
        metavar="{vector,tree}",
        default=argparse.SUPPRESS,
        help="happens-before engine for parent-child pruning: 'vector' "
        "materializes {tid: counter} dicts per event (paper section 4.1), "
        "'tree' captures O(1) tree-clock stamps; both prune identically",
    )
    shared.add_argument(
        "--jobs",
        type=int,
        default=argparse.SUPPRESS,
        help="worker processes for experiment cells (1 = serial, 0 = all CPUs); "
        "results are bit-identical at any value",
    )
    shared.add_argument(
        "--cache-dir",
        type=str,
        default=argparse.SUPPRESS,
        help="content-addressed run cache directory (also via WAFFLE_CACHE_DIR); "
        "prep traces are recorded once and their plans reused across tables",
    )
    shared.add_argument(
        "--obs-dir",
        type=str,
        default=argparse.SUPPRESS,
        help="enable run telemetry and write it here (also via WAFFLE_OBS_DIR); "
        "inspect with 'obs report <dir>' afterwards",
    )
    shared.add_argument(
        "--events-dir",
        type=str,
        default=argparse.SUPPRESS,
        help="write the campaign event stream here (also via WAFFLE_EVENTS_DIR; "
        "--obs-dir co-locates one automatically); inspect with "
        "'campaign status <dir>' or 'obs analytics <dir>'",
    )
    shared.add_argument(
        "--progress",
        action="store_true",
        default=argparse.SUPPRESS,
        help="render live campaign progress (cells, retries, detections, eta) "
        "to stderr while experiments run",
    )
    shared.add_argument(
        "--resume",
        type=str,
        default=argparse.SUPPRESS,
        metavar="DIR",
        help="campaign journal directory: completed cells are skipped, the "
        "failure tail re-attempted; results are bit-identical to an "
        "uninterrupted run (activates the supervisor)",
    )
    shared.add_argument(
        "--retries",
        type=int,
        default=argparse.SUPPRESS,
        help="per-cell attempt budget for retryable faults (worker crash, "
        "hang, transient I/O); deterministic failures are quarantined, "
        "not retried (activates the supervisor; default 3 when active)",
    )
    shared.add_argument(
        "--cell-timeout",
        type=float,
        default=argparse.SUPPRESS,
        metavar="SECONDS",
        help="explicit per-cell watchdog deadline; default adapts from the "
        "median completed-cell time x the runner's TIMEOUT_FACTOR "
        "(activates the supervisor)",
    )
    parser = argparse.ArgumentParser(
        prog="waffle-repro",
        parents=[shared],
        description="Regenerate the tables and figures of the Waffle paper (EuroSys '23).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, attempts_default=15, budget_default=50):
        p.add_argument("--apps", nargs="*", default=None, help="restrict to these app keys")
        p.add_argument("--bugs", nargs="*", default=None, help="restrict to these bug ids")
        p.add_argument("--attempts", type=int, default=attempts_default)
        p.add_argument("--budget", type=int, default=budget_default)

    for name, fn, help_text in (
        ("table1", cmd_table1, "design-decision matrix (Table 1)"),
        ("table2", cmd_table2, "instrumentation/injection site densities (Table 2)"),
        ("figure2", cmd_figure2, "timing-condition microbenchmark (Figure 2)"),
        ("figure5", cmd_figure5, "interference-window microbenchmark (Figure 5)"),
        ("overlap", cmd_overlap, "delay-overlap ratios (section 3.3)"),
        ("dynamic", cmd_dynamic, "init-site dynamic-instance census (section 3.3)"),
        ("table4", cmd_table4, "bug detection results (Table 4)"),
        ("table5", cmd_table5, "average overhead per app (Table 5)"),
        ("table6", cmd_table6, "cumulative delays injected (Table 6)"),
        ("table7", cmd_table7, "design-point ablations (Table 7)"),
        ("stress", cmd_stress, "delay-free control (section 6.2)"),
        ("related", cmd_related, "extension: the full Table 1 design space"),
        ("all", cmd_all, "everything above"),
    ):
        p = sub.add_parser(name, help=help_text, parents=[shared])
        common(p, attempts_default=5 if name in ("table7", "all") else 15)
        p.set_defaults(func=fn)

    for name, fn, help_text in (
        ("apps", cmd_apps, "list the benchmark applications"),
        ("bugs", cmd_bugs, "list the 18 Table 4 bugs"),
    ):
        p = sub.add_parser(name, help=help_text, parents=[shared])
        p.add_argument("-v", "--verbose", action="store_true")
        p.set_defaults(func=fn)

    p = sub.add_parser(
        "trace",
        help="record and analyze a delay-free trace of one workload",
        parents=[shared],
    )
    p.add_argument("--bug", type=str, default=None, help="bug id, e.g. Bug-11")
    p.add_argument("--app", type=str, default=None)
    p.add_argument("--test", type=str, default=None)
    p.add_argument("--save-trace", type=str, default=None, help="write events (JSONL) here")
    p.add_argument("--save-plan", type=str, default=None, help="write the injection plan here")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("detect", help="run one tool on one workload", parents=[shared])
    p.add_argument("--tool", choices=["waffle", "wafflebasic", "stress"], default="waffle")
    p.add_argument("--bug", type=str, default=None, help="bug id, e.g. Bug-11")
    p.add_argument("--app", type=str, default=None)
    p.add_argument("--test", type=str, default=None)
    p.add_argument("--budget", type=int, default=50)
    p.add_argument(
        "--dossier-dir",
        type=str,
        default=None,
        help="enable the flight recorder and write bug dossiers + coverage here",
    )
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser(
        "fuzz",
        help="generate seeded workloads and verify the detector against "
        "their planted-bug oracles",
        parents=[shared],
    )
    p.add_argument(
        "--seed-range",
        type=str,
        default="0:20",
        metavar="START:STOP",
        help="generator seeds to evaluate, half-open (default 0:20); each "
        "seed is one procedurally generated workload with an analytic "
        "ground-truth oracle",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=8,
        help="detection runs per oracle session (default 8)",
    )
    p.add_argument(
        "--no-replay",
        action="store_true",
        help="skip re-executing each detection's dossier (replay "
        "verification is on by default)",
    )
    p.add_argument(
        "--shrink-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="shrink failing workloads to minimal specs and persist them "
        "here as regression-*.json fixtures",
    )
    p.add_argument(
        "--dashboard",
        action="store_true",
        help="render dashboard.html + metrics.prom and append a "
        "timeseries.jsonl quality row into --obs-dir / --events-dir "
        "(or ./waffle-dashboard) after the run",
    )
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "replay",
        help="deterministically re-execute a bug dossier's minimal schedule",
        parents=[shared],
    )
    p.add_argument("dossier", type=str, help="path to a dossier-*.json file")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "obs",
        help="aggregate a telemetry directory written via --obs-dir",
        parents=[shared],
    )
    p.add_argument(
        "action",
        choices=[
            "report", "chrome", "coverage", "dossier", "analytics",
            "dashboard", "metrics", "trend",
        ],
        help="digest, trace_event export, coverage observatory, dossier dump, "
        "cross-run campaign analytics, self-contained HTML dashboard, "
        "OpenMetrics export, or the quality time-series trend",
    )
    p.add_argument("obs_path", type=str, help="the obs directory to aggregate")
    p.add_argument("--max-runs", type=int, default=20, help="rows in the slowest-runs table")
    p.add_argument(
        "--trace-out", type=str, default=None, help="chrome: output path (default <dir>/trace.json)"
    )
    p.add_argument(
        "--html",
        action="store_true",
        help="dossier: also write an HTML swimlane next to each dossier file",
    )
    p.add_argument(
        "--bench",
        nargs="*",
        default=None,
        metavar="PATH",
        help="analytics/dashboard: BENCH_*.json snapshots (or directories of "
        "them) for the perf-regression tracker",
    )
    p.add_argument(
        "--dashboard-out",
        type=str,
        default=None,
        metavar="PATH",
        help="dashboard: output path (default <dir>/dashboard.html)",
    )
    p.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="dashboard/metrics: output path (default <dir>/metrics.prom)",
    )
    p.add_argument(
        "--deterministic",
        action="store_true",
        help="dashboard/metrics: export only data derived from deduplicated "
        "work products, so chaos / resumed / cached campaigns export "
        "byte-identically to clean ones",
    )
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "campaign",
        help="run fleet campaigns; inspect or merge campaign event streams",
        parents=[shared],
    )
    campaign_sub = p.add_subparsers(dest="action", required=True)

    cp = campaign_sub.add_parser(
        "run",
        parents=[shared],
        help="coordinate a fleet campaign: N worker processes pull leased "
        "cells from a shared directory; output is byte-identical to a "
        "serial run",
    )
    cp.add_argument(
        "--fleet-dir",
        type=str,
        required=True,
        metavar="DIR",
        help="the shared coordination directory (manifest, leases, artifact "
        "store, per-worker journals and event streams)",
    )
    cp.add_argument(
        "--workers",
        type=int,
        default=0,
        help="local worker processes to spawn (default 0: the coordinator "
        "executes alone; remote workers join via 'campaign worker')",
    )
    cp.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="heartbeat deadline on cell leases; a worker silent this long "
        "is presumed dead and its cell is stolen (default 30)",
    )
    cp.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="wait-loop poll interval for other workers' results (default 0.2)",
    )
    cp.add_argument(
        "--min-workers",
        type=int,
        default=0,
        help="wait for this many workers to register before starting "
        "(default 0: start immediately)",
    )
    cp.add_argument(
        "--drain-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="give up waiting for unresolved cells / straggling workers "
        "after this long (default 600)",
    )
    cp.add_argument(
        "inner",
        nargs=argparse.REMAINDER,
        metavar="-- COMMAND ...",
        help="the campaign to run, e.g. -- fuzz --seed-range 0:40",
    )
    cp.set_defaults(func=cmd_campaign_run)

    cp = campaign_sub.add_parser(
        "worker",
        parents=[shared],
        help="join a fleet campaign as one worker (the inner command comes "
        "from the fleet directory's manifest)",
    )
    cp.add_argument("--fleet-dir", type=str, required=True, metavar="DIR")
    cp.add_argument(
        "--wait",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="how long to wait for the coordinator's manifest (default 60)",
    )
    cp.add_argument(
        "--worker-id", type=str, default=None, help="stable identity override"
    )
    cp.set_defaults(func=cmd_campaign_worker)

    for action, help_text in (
        ("status", "render progress/health/funnel from event streams"),
        ("merge", "combine worker streams into one deterministic timeline"),
    ):
        cp = campaign_sub.add_parser(action, parents=[shared], help=help_text)
        cp.add_argument(
            "paths",
            nargs="+",
            help="event stream files or directories of events-*.jsonl "
            "(a fleet dir works directly)",
        )
        if action == "merge":
            cp.add_argument(
                "--merged-out",
                type=str,
                default=None,
                metavar="PATH",
                help="where to write the combined stream",
            )
        else:
            cp.add_argument(
                "--max-cells", type=int, default=8, help="in-flight cells listed"
            )
        cp.set_defaults(func=cmd_campaign)
    return parser


def _cache_summary_line(
    hits0: int = 0, misses0: int = 0, writes0: int = 0, corrupt0: int = 0
) -> Optional[str]:
    """End-of-run cache effectiveness for this invocation: the delta of
    the process-wide totals against the counts observed at entry (so
    embedders calling main() repeatedly don't see stale numbers)."""
    hits = GLOBAL_STATS.hits - hits0
    misses = GLOBAL_STATS.misses - misses0
    writes = GLOBAL_STATS.writes - writes0
    corrupt = GLOBAL_STATS.corrupt - corrupt0
    lookups = hits + misses
    if lookups == 0 and writes == 0:
        return None
    rate = 100.0 * hits / lookups if lookups else 0.0
    line = "cache: %d hits / %d misses (%.1f%% hit rate), %d writes" % (
        hits,
        misses,
        rate,
        writes,
    )
    if corrupt:
        line += ", %d corrupt record(s) quarantined" % corrupt
    return line


def normalize_args(args) -> None:
    """Fill the shared options' defaults in place.

    The shared flags parse with ``SUPPRESS`` (so a value given before
    the subcommand survives), which means unset options are *absent*
    rather than None. Both :func:`main` and the fleet's inner-command
    dispatch (:func:`repro.harness.fleet._dispatch_inner`) normalize
    through here so the two entry paths cannot drift.
    """
    if not hasattr(args, "seed"):
        args.seed = 0
    if not hasattr(args, "out"):
        args.out = None
    if not hasattr(args, "json"):
        args.json = False
    if not hasattr(args, "jobs"):
        args.jobs = 1
    if not hasattr(args, "cache_dir"):
        args.cache_dir = None
    if not hasattr(args, "obs_dir"):
        args.obs_dir = None
    if not hasattr(args, "events_dir"):
        args.events_dir = None
    if not hasattr(args, "progress"):
        args.progress = False
    if not hasattr(args, "resume"):
        args.resume = None
    if not hasattr(args, "retries"):
        args.retries = None
    if not hasattr(args, "cell_timeout"):
        args.cell_timeout = None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    normalize_args(args)
    if args.command in ("detect", "trace") and not args.bug and not (args.app and args.test):
        parser.error("%s requires --bug or both --app and --test" % args.command)
    if args.events_dir:
        # Standalone campaign event stream (no telemetry). Like
        # --obs-dir, the environment variable is what pool workers
        # inherit; configure() activates the bus here right away.
        os.environ[eventbus.EVENTS_DIR_ENV] = args.events_dir
        eventbus.configure(args.events_dir)
    if args.obs_dir:
        # The environment variable is what --jobs pool workers inherit;
        # configure() activates telemetry in this process right away
        # (and co-locates a campaign event stream when no --events-dir /
        # WAFFLE_EVENTS_DIR claimed its own destination).
        os.environ[obs.OBS_DIR_ENV] = args.obs_dir
        obs.configure(args.obs_dir)
    if args.progress:
        from ..obs import campaign as campaign_mod

        if eventbus.bus() is None:
            # No durable stream requested: an in-memory bus is all the
            # live renderer needs.
            eventbus.configure(None)
        campaign_mod.attach_progress(sys.stderr)
    # Campaign lifecycle events frame every *computing* command; the
    # inspector commands (which read streams rather than produce them)
    # stay silent so `campaign status` never appends to what it reads.
    emit_campaign = eventbus.active() and args.command not in (
        "campaign",
        "obs",
        "apps",
        "bugs",
        "replay",
    )
    campaign_started = time.time()
    if emit_campaign:
        eventbus.emit(
            "campaign_begin", command=args.command, seed=args.seed, jobs=args.jobs
        )
    # The supervisor activates when any resilience flag is given, or
    # when chaos injection is on (a chaos campaign without the fault
    # boundary would just crash, which is not what chaos is for).
    # ... except under fleet commands: the fleet owns parallelism,
    # retries and lease-level crash recovery itself.
    sup = None
    if args.command != "campaign" and (
        args.resume or args.retries or args.cell_timeout or faults.active()
    ):
        journal = supervisor.CampaignJournal(args.resume) if args.resume else None
        sup = supervisor.Supervisor(
            policy=supervisor.RetryPolicy(max_attempts=args.retries or 3, seed=args.seed),
            journal=journal,
            cell_timeout_s=args.cell_timeout,
        )
        supervisor.activate(sup)
    hits0, misses0, writes0, corrupt0 = (
        GLOBAL_STATS.hits,
        GLOBAL_STATS.misses,
        GLOBAL_STATS.writes,
        GLOBAL_STATS.corrupt,
    )
    try:
        # Commands return an exit code or None (= success): replay and
        # the obs inspectors signal "not reproduced" / "nothing found"
        # via rc.
        rc = args.func(args)
    finally:
        if sup is not None:
            supervisor.deactivate()
    summary = _cache_summary_line(hits0, misses0, writes0, corrupt0)
    if summary is not None:
        print(summary)
    if sup is not None and sup.stats.cells:
        # The degradation summary: the campaign completed, possibly
        # minus quarantined cells -- exit code stays 0 by design.
        print(sup.stats.summary_line())
    if emit_campaign:
        eventbus.emit(
            "campaign_end",
            ok=not rc,
            wall_s=round(time.time() - campaign_started, 3),
        )
    eventbus.flush()
    if args.obs_dir:
        obs.flush()
        print("telemetry written to %s (inspect with: obs report %s)" % (args.obs_dir, args.obs_dir))
    if args.events_dir:
        print(
            "campaign events written to %s (inspect with: campaign status %s)"
            % (args.events_dir, args.events_dir)
        )
    return int(rc) if rc else 0


if __name__ == "__main__":
    sys.exit(main())
