"""Low-level run drivers shared by the experiment implementations.

Provides single-run primitives (baseline, recording, one online or
planned detection run) with per-test timeout handling, so experiment
code composes runs instead of re-implementing tool loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..apps.base import AppTestCase
from ..core.analyzer import InjectionPlan, analyze_trace
from ..core.candidates import CandidateSet
from ..core.config import WaffleConfig
from ..core.delay_policy import DecayState
from ..core.runtime import OnlineInjectionHook, PlannedInjectionHook
from ..core.trace import RecordingHook, Trace
from ..sim.api import Simulation
from ..sim.instrument import NoopHook
#: Per-test timeout multiplier: a run exceeding ``TIMEOUT_FACTOR x``
#: its uninstrumented duration (with a floor) is marked TimeOut -- the
#: convention behind the MQTT.Net rows of Tables 5 and 6, where most
#: tests time out under WaffleBasic's accumulated fixed delays.
TIMEOUT_FACTOR = 30.0
TIMEOUT_FLOOR_MS = 3_000.0


def test_time_limit(baseline_ms: float) -> float:
    return max(TIMEOUT_FLOOR_MS, TIMEOUT_FACTOR * baseline_ms)


@dataclass
class SingleRun:
    """One measured run of one test."""

    virtual_time_ms: float
    op_count: int
    crashed: bool
    timed_out: bool
    delays_injected: int = 0
    total_delay_ms: float = 0.0
    overlap_ratio: float = 0.0


def run_baseline(test: AppTestCase, seed: int = 0) -> SingleRun:
    """Uninstrumented execution: the 'Base' column."""
    sim = Simulation(seed=seed, hook=NoopHook(), time_limit_ms=600_000.0)
    result = sim.run(test.build(sim))
    return SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
    )


def run_recording(
    test: AppTestCase,
    config: WaffleConfig,
    seed: int = 0,
    time_limit_ms: Optional[float] = None,
) -> Tuple[SingleRun, Trace]:
    """A Waffle preparation run: delay-free, full tracing."""
    hook = RecordingHook(
        record_overhead_ms=config.record_overhead_ms,
        track_vector_clocks=config.parent_child_analysis,
    )
    sim = Simulation(
        seed=seed,
        hook=hook,
        time_limit_ms=time_limit_ms if time_limit_ms is not None else 600_000.0,
    )
    result = sim.run(test.build(sim))
    run = SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
    )
    return run, hook.trace


def run_planned_detection(
    test: AppTestCase,
    plan: InjectionPlan,
    config: WaffleConfig,
    decay: DecayState,
    seed: int = 0,
    hook_seed: Optional[int] = None,
    time_limit_ms: Optional[float] = None,
) -> Tuple[SingleRun, PlannedInjectionHook]:
    """One Waffle detection run bootstrapped from a plan."""
    hook = PlannedInjectionHook(
        plan, config, decay, seed=hook_seed if hook_seed is not None else seed
    )
    sim = Simulation(
        seed=seed,
        hook=hook,
        time_limit_ms=time_limit_ms if time_limit_ms is not None else 600_000.0,
    )
    result = sim.run(test.build(sim))
    run = SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
        delays_injected=hook.delays_injected,
        total_delay_ms=hook.total_delay_ms,
        overlap_ratio=hook.overlap_ratio(),
    )
    return run, hook


def run_online_detection(
    test: AppTestCase,
    config: WaffleConfig,
    decay: DecayState,
    candidates: CandidateSet,
    seed: int = 0,
    hook_seed: Optional[int] = None,
    tsv_mode: bool = False,
    time_limit_ms: Optional[float] = None,
) -> Tuple[SingleRun, OnlineInjectionHook]:
    """One WaffleBasic (or Tsvd) run; state persists via the arguments."""
    hook = OnlineInjectionHook(
        config,
        decay,
        candidates=candidates,
        seed=hook_seed if hook_seed is not None else seed,
        tsv_mode=tsv_mode,
        variable_delays=False,
        hb_inference=True,
        parent_child=False,
        online_interference=False,
    )
    sim = Simulation(
        seed=seed,
        hook=hook,
        time_limit_ms=time_limit_ms if time_limit_ms is not None else 600_000.0,
    )
    result = sim.run(test.build(sim))
    run = SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
        delays_injected=hook.delays_injected,
        total_delay_ms=hook.total_delay_ms,
        overlap_ratio=hook.overlap_ratio(),
    )
    return run, hook


def analyze_test(test: AppTestCase, config: WaffleConfig, seed: int = 0) -> InjectionPlan:
    """Record one delay-free trace of a test and analyze it."""
    _, trace = run_recording(test, config, seed=seed)
    return analyze_trace(trace, config)
