"""Low-level run drivers shared by the experiment implementations.

Provides single-run primitives (baseline, recording, one online or
planned detection run) with per-test timeout handling, so experiment
code composes runs instead of re-implementing tool loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import obs
from ..obs import eventbus
from ..apps.base import AppTestCase
from ..core.analyzer import InjectionPlan, analyze_trace
from ..core.candidates import CandidateSet
from ..core.config import WaffleConfig
from ..core.delay_policy import DecayState
from ..core.nearmiss import TsvNearMissTracker
from ..core.runtime import OnlineInjectionHook, PlannedInjectionHook
from ..core.trace import RecordingHook, Trace
from ..sim.api import Simulation
from ..sim.instrument import NoopHook
from .cache import PlanCache, PrepResult, config_hash, prep_from_record, prep_to_record, run_to_dict
#: Per-test timeout multiplier: a run exceeding ``TIMEOUT_FACTOR x``
#: its uninstrumented duration (with a floor) is marked TimeOut -- the
#: convention behind the MQTT.Net rows of Tables 5 and 6, where most
#: tests time out under WaffleBasic's accumulated fixed delays. The
#: campaign supervisor (:mod:`repro.harness.supervisor`) applies the
#: same factor/floor convention at cell granularity for its wall-clock
#: watchdog: factor x the median completed-cell time, floored.
TIMEOUT_FACTOR = 30.0
TIMEOUT_FLOOR_MS = 3_000.0

#: Process-local simulation counters, incremented by the run primitives
#: below. The cache tests assert hits against these: a warm-cache call
#: must not move them.
BASELINE_RUNS = 0
RECORDING_RUNS = 0


def test_time_limit(baseline_ms: float) -> float:
    return max(TIMEOUT_FLOOR_MS, TIMEOUT_FACTOR * baseline_ms)


def _begin_flight_run(kind: str, test: AppTestCase, seed: int) -> None:
    """Mark a run boundary in the flight recorder (no-op when off)."""
    flight = obs.flightrec.recorder()
    if flight is not None:
        flight.begin_run(kind=kind, test=test.name, seed=seed)


def _record_run(session, kind, test, seed, started, result, hook=None, sim=None) -> None:
    """Per-run telemetry summary (only called when a session is active)."""
    obs.collect_run_telemetry(
        session,
        kind,
        test.name,
        seed,
        (time.perf_counter() - started) * 1000.0,
        result,
        hook=hook,
        scheduler=sim.scheduler if sim is not None else None,
    )


@dataclass
class SingleRun:
    """One measured run of one test."""

    virtual_time_ms: float
    op_count: int
    crashed: bool
    timed_out: bool
    delays_injected: int = 0
    total_delay_ms: float = 0.0
    overlap_ratio: float = 0.0


def run_baseline(test: AppTestCase, seed: int = 0) -> SingleRun:
    """Uninstrumented execution: the 'Base' column."""
    global BASELINE_RUNS
    BASELINE_RUNS += 1
    session = obs.session()
    started = time.perf_counter()
    _begin_flight_run("baseline", test, seed)
    sim = Simulation(seed=seed, hook=NoopHook(), time_limit_ms=600_000.0)
    result = sim.run(test.build(sim))
    if session is not None:
        _record_run(session, "baseline", test, seed, started, result, sim=sim)
    return SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
    )


def run_recording(
    test: AppTestCase,
    config: WaffleConfig,
    seed: int = 0,
    time_limit_ms: Optional[float] = None,
) -> Tuple[SingleRun, Trace]:
    """A Waffle preparation run: delay-free, full tracing."""
    global RECORDING_RUNS
    RECORDING_RUNS += 1
    session = obs.session()
    started = time.perf_counter()
    _begin_flight_run("prep", test, seed)
    hook = RecordingHook(
        record_overhead_ms=config.record_overhead_ms,
        track_vector_clocks=config.parent_child_analysis,
        hb_engine=config.hb_engine,
    )
    sim = Simulation(
        seed=seed,
        hook=hook,
        time_limit_ms=time_limit_ms if time_limit_ms is not None else 600_000.0,
    )
    result = sim.run(test.build(sim))
    if session is not None:
        _record_run(session, "prep", test, seed, started, result, hook=hook, sim=sim)
    run = SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
    )
    return run, hook.trace


def run_planned_detection(
    test: AppTestCase,
    plan: InjectionPlan,
    config: WaffleConfig,
    decay: DecayState,
    seed: int = 0,
    hook_seed: Optional[int] = None,
    time_limit_ms: Optional[float] = None,
) -> Tuple[SingleRun, PlannedInjectionHook]:
    """One Waffle detection run bootstrapped from a plan."""
    session = obs.session()
    started = time.perf_counter()
    _begin_flight_run("detect", test, seed)
    hook = PlannedInjectionHook(
        plan, config, decay, seed=hook_seed if hook_seed is not None else seed
    )
    sim = Simulation(
        seed=seed,
        hook=hook,
        time_limit_ms=time_limit_ms if time_limit_ms is not None else 600_000.0,
    )
    result = sim.run(test.build(sim))
    if session is not None:
        _record_run(session, "detect", test, seed, started, result, hook=hook, sim=sim)
    run = SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
        delays_injected=hook.delays_injected,
        total_delay_ms=hook.total_delay_ms,
        overlap_ratio=hook.overlap_ratio(),
    )
    _emit_detect_run("detect", test.name, seed, hook_seed, run)
    return run, hook


def run_online_detection(
    test: AppTestCase,
    config: WaffleConfig,
    decay: DecayState,
    candidates: CandidateSet,
    seed: int = 0,
    hook_seed: Optional[int] = None,
    tsv_mode: bool = False,
    time_limit_ms: Optional[float] = None,
) -> Tuple[SingleRun, OnlineInjectionHook]:
    """One WaffleBasic (or Tsvd) run; state persists via the arguments."""
    session = obs.session()
    started = time.perf_counter()
    _begin_flight_run("online", test, seed)
    hook = OnlineInjectionHook(
        config,
        decay,
        candidates=candidates,
        seed=hook_seed if hook_seed is not None else seed,
        tsv_mode=tsv_mode,
        variable_delays=False,
        hb_inference=True,
        parent_child=False,
        online_interference=False,
    )
    sim = Simulation(
        seed=seed,
        hook=hook,
        time_limit_ms=time_limit_ms if time_limit_ms is not None else 600_000.0,
    )
    result = sim.run(test.build(sim))
    if session is not None:
        _record_run(session, "online", test, seed, started, result, hook=hook, sim=sim)
    run = SingleRun(
        virtual_time_ms=result.virtual_time,
        op_count=result.op_count,
        crashed=result.crashed,
        timed_out=result.timed_out,
        delays_injected=hook.delays_injected,
        total_delay_ms=hook.total_delay_ms,
        overlap_ratio=hook.overlap_ratio(),
    )
    _emit_detect_run("online", test.name, seed, hook_seed, run,
                     pairs_observed=hook._tracker.pairs_observed)
    return run, hook


def _emit_detect_run(kind: str, test_name: str, seed: int,
                     hook_seed: Optional[int], run: SingleRun,
                     pairs_observed: int = 0) -> None:
    """Campaign event for one executed detection run.

    Every field besides the bus transport metadata is a deterministic
    function of (test, seed, hook seed), which is what lets the
    campaign view deduplicate re-executions (retried cells, resumed
    campaigns) by whole-event identity.
    """
    bus = eventbus.bus()
    if bus is None:
        return
    bus.emit(
        "detect_run",
        kind=kind,
        test=test_name,
        seed=seed,
        hook_seed=hook_seed if hook_seed is not None else seed,
        injected=run.delays_injected,
        crashed=run.crashed,
        pairs_observed=pairs_observed,
    )
    bus.maybe_flush()


def analyze_test(
    test: AppTestCase,
    config: WaffleConfig,
    seed: int = 0,
    cache: Optional[PlanCache] = None,
    test_id: Optional[str] = None,
) -> InjectionPlan:
    """Record one delay-free trace of a test and analyze it.

    With a cache, the preparation run is recorded once per
    (test, config, seed) and its plan reused across tables.
    """
    return prepare_test(test, config, seed=seed, cache=cache, test_id=test_id).plan


# ----------------------------------------------------------------------
# Cached primitives
#
# Each wraps one deterministic unit of work with a content-addressed
# cache lookup. ``test_id`` must uniquely identify the workload across
# applications (the experiment drivers pass "<app>:<test>"); it
# defaults to the test's own name.
# ----------------------------------------------------------------------


def _test_key(test: AppTestCase, test_id: Optional[str]) -> str:
    return test_id if test_id is not None else test.name


def baseline_run(
    test: AppTestCase,
    seed: int = 0,
    cache: Optional[PlanCache] = None,
    test_id: Optional[str] = None,
) -> SingleRun:
    """:func:`run_baseline` with content-addressed caching."""
    if cache is None:
        return run_baseline(test, seed=seed)
    key = {"test": _test_key(test, test_id), "seed": seed}
    record = cache.get("baseline", key)
    if record is not None:
        return SingleRun(**record)
    run = run_baseline(test, seed=seed)
    cache.put("baseline", key, run_to_dict(run))
    return run


def prepare_test(
    test: AppTestCase,
    config: WaffleConfig,
    seed: int = 0,
    time_limit_ms: Optional[float] = None,
    cache: Optional[PlanCache] = None,
    test_id: Optional[str] = None,
) -> PrepResult:
    """One preparation run, analyzed, with every table-facing census.

    The fresh path records the trace, analyzes it into an
    :class:`InjectionPlan` and computes the site/instance censuses that
    Tables 2/5/6 and section 3.3 consume; a cache hit returns all of it
    without re-running the simulation.
    """
    key = None
    if cache is not None:
        key = {
            "test": _test_key(test, test_id),
            "config": config_hash(config),
            "seed": seed,
            "limit": time_limit_ms,
        }
        record = cache.get("prep", key)
        if record is not None:
            prep = prep_from_record(record, SingleRun)
            _emit_prep(_test_key(test, test_id), seed, time_limit_ms, prep)
            return prep

    run, trace = run_recording(test, config, seed=seed, time_limit_ms=time_limit_ms)
    plan = analyze_trace(trace, config)
    tsv_tracker = TsvNearMissTracker(config.near_miss_window_ms)
    if config.batched_analysis:
        tsv_tracker.observe_batch(trace.sorted_events())
    else:
        tsv_tracker.observe_all(trace.sorted_events())
    prep = PrepResult(
        run=run,
        plan=plan,
        mo_sites=len(trace.static_sites(memorder=True)),
        tsv_sites=len(trace.static_sites(memorder=False)),
        tsv_injection_sites=len(tsv_tracker.candidates.delay_locations),
        init_instance_counts=trace.init_instance_counts(),
        event_count=len(trace),
    )
    if cache is not None and key is not None:
        cache.put("prep", key, prep_to_record(prep))
    _emit_prep(_test_key(test, test_id), seed, time_limit_ms, prep)
    return prep


def _emit_prep(test_key: str, seed: int, limit: Optional[float], prep: PrepResult) -> None:
    """Campaign event for one preparation analysis (cache hit or fresh:
    the payload is deterministic either way, so the campaign view's
    whole-event dedup keeps exactly one per logical preparation)."""
    bus = eventbus.bus()
    if bus is None:
        return
    bus.emit(
        "prep",
        test=test_key,
        seed=seed,
        limit=limit,
        pairs=prep.plan.stats.candidate_pairs,
        sites=prep.plan.stats.injection_sites,
    )
    bus.maybe_flush()


def online_pair(
    test: AppTestCase,
    config: WaffleConfig,
    seed: int = 0,
    time_limit_ms: Optional[float] = None,
    tsv_mode: bool = False,
    cache: Optional[PlanCache] = None,
    test_id: Optional[str] = None,
) -> List[SingleRun]:
    """The two-run online-detection unit shared by Tables 5/6 and the
    overlap census: fresh decay/candidate state, run 1 identifies, run 2
    injects from the persisted state. Returns both runs' measurements.
    """
    key = None
    if cache is not None:
        key = {
            "test": _test_key(test, test_id),
            "config": config_hash(config),
            "seed": seed,
            "limit": time_limit_ms,
            "tsv": tsv_mode,
        }
        record = cache.get("online_pair", key)
        if record is not None:
            return [SingleRun(**entry) for entry in record["runs"]]

    decay = DecayState(config.decay_lambda)
    candidates = CandidateSet()
    runs: List[SingleRun] = []
    for run_index in (1, 2):
        run, _ = run_online_detection(
            test,
            config,
            decay,
            candidates,
            seed=seed + run_index,
            hook_seed=seed * 7919 + run_index,
            tsv_mode=tsv_mode,
            time_limit_ms=time_limit_ms,
        )
        runs.append(run)
    if cache is not None and key is not None:
        cache.put("online_pair", key, {"runs": [run_to_dict(run) for run in runs]})
    return runs
