"""Filesystem-coordinated campaign fleet: lease-based work stealing.

The supervisor (:mod:`repro.harness.supervisor`) made one host's
campaign survive crashed, hung and poisoned cells; this module lifts
that fault boundary to a *fleet*: N independent worker processes --
spawnable on different hosts -- executing one campaign against a shared
directory, with no coordinator in the data path. Coordination is three
on-disk structures, all under the fleet directory:

* ``campaign.json`` -- the manifest: the inner CLI command every
  executor runs (the campaign is a deterministic function of that
  command, so every executor derives the *same* content-addressed cell
  list independently -- there is no work queue to ship, only leases to
  claim);
* ``leases/`` -- one lease file per in-flight cell. Acquisition is
  atomic and exclusive (hardlink-into-place), carries the owner, the
  attempt number and a heartbeat deadline; owners re-arm the deadline
  from a heartbeat thread. A worker killed mid-cell (SIGKILL, chaos
  ``worker_crash``) simply stops heartbeating: any other worker
  *steals* the expired lease -- rename-to-tombstone, so exactly one
  stealer wins -- and re-executes the cell at ``attempt + 1`` under the
  same :class:`~repro.harness.supervisor.RetryPolicy` semantics;
* ``store/`` -- the shared artifact store
  (:mod:`repro.harness.store`): finalized cells are published
  atomically and fetched read-through with checksum verification, so
  no cell executes twice on the happy path and a corrupt record is a
  quarantined miss, never a poisoned result.

Because every cell is a pure function of its key, the coordinator's
merged tables, canonical journal and event analytics are **byte
identical** to a serial run's -- including under chaos that kills
workers mid-lease. That identity is the acceptance test's anchor.

Lease ledger (reconciled exactly by ``scripts/check_obs.py``): every
lease creation is a ``lease_acquire`` or a ``lease_steal``; every
termination is a ``lease_release`` (owner finalized, or the
coordinator reclaimed a lease whose result was already published) or a
``lease_expire`` (tombstoned by a stealer). Creations and terminations
balance::

    lease_acquire + lease_steal == lease_release + lease_expire

All lease and worker lifecycle events are hard-flushed at emission, so
even a SIGKILL'd worker leaves a balanced ledger (modulo at most one
torn tail line, which the reconciliation already tolerates).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs import eventbus
from . import faults
from .store import ArtifactStore
from .supervisor import RetryPolicy, cell_key

#: Fleet directory layout.
MANIFEST_NAME = "campaign.json"
LEASES_DIR = "leases"
EXPIRED_DIR = "expired"
STORE_DIR = "store"
WORKERS_DIR = "workers"
CACHE_DIR = "cache"
MERGED_JOURNAL_NAME = "journal-merged.jsonl"
#: Deliberately NOT matching ``events-*.jsonl``: the merged stream must
#: not be re-merged (double-counted) by ``campaign status <fleet-dir>``.
MERGED_EVENTS_NAME = "merged-events.jsonl"

#: Exit code of a worker that drained on request (SIGTERM / shutdown).
DRAIN_EXIT = 3


class FleetDrained(Exception):
    """Raised out of :meth:`FleetWorker.map_cells` when the worker was
    asked to shut down: leases are released, nothing is finalized."""


@dataclasses.dataclass
class FleetStats:
    """One executor's contribution to the campaign."""

    executed: int = 0
    fetched: int = 0
    stolen: int = 0
    retried: int = 0
    quarantined: int = 0
    failed: int = 0
    reclaimed: int = 0
    fault_counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Wall time inside cell functions vs inside coordination (leases,
    #: store traffic, journal appends). The bench's overhead gate is
    #: coordination_s / cell_s.
    cell_s: float = 0.0
    coordination_s: float = 0.0

    def count_fault(self, kind: str) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1

    def summary_line(self) -> str:
        parts = ["%d executed" % self.executed, "%d fetched" % self.fetched]
        if self.stolen:
            parts.append("%d stolen" % self.stolen)
        if self.retried:
            parts.append("%d retried" % self.retried)
        if self.quarantined:
            parts.append("%d quarantined" % self.quarantined)
        if self.failed:
            parts.append("%d failed" % self.failed)
        return "fleet: %s (coordination %.3fs / cell %.3fs)" % (
            ", ".join(parts), self.coordination_s, self.cell_s,
        )


def _fleet_paths(fleet_dir: os.PathLike) -> Dict[str, Path]:
    root = Path(fleet_dir)
    return {
        "root": root,
        "manifest": root / MANIFEST_NAME,
        "leases": root / LEASES_DIR,
        "expired": root / EXPIRED_DIR,
        "store": root / STORE_DIR,
        "workers": root / WORKERS_DIR,
        "cache": root / CACHE_DIR,
    }


def _atomic_write_json(payload: dict, target: Path) -> None:
    tmp = target.with_name(target.name + ".tmp.%d" % os.getpid())
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, target)


class _Heartbeat(threading.Thread):
    """Re-arms one held lease's deadline until stopped.

    Beats every ``ttl / 3`` so two consecutive beats can be lost to
    scheduling jitter before the lease expires. Stops itself when the
    renewal discovers the lease is no longer ours (stolen: the owner
    was presumed dead) -- a zombie owner must not resurrect a lease a
    stealer legitimately took.
    """

    def __init__(self, worker: "FleetWorker", key: str):
        super().__init__(daemon=True, name="lease-heartbeat-%s" % key[:8])
        self.worker = worker
        self.key = key
        self.interval_s = worker.lease_ttl_s / 3.0
        # Not ``_stop``: that name is a method threading.Thread itself
        # calls from join().
        self._halt = threading.Event()
        self.beats = 0

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            if not self.worker._renew_lease(self.key):
                return
            self.beats += 1
            eventbus.emit("heartbeat", cell=self.key[:16],
                          worker=self.worker.worker_id, beat=self.beats)
            eventbus.flush()

    def stop(self) -> None:
        self._halt.set()


class FleetWorker:
    """One campaign executor (worker or coordinator).

    Activated process-globally (:func:`activate`);
    :func:`repro.harness.parallel.map_units` routes every experiment
    fan-out through :meth:`map_cells` while one is active. The
    coordinator is itself an executor -- it runs the same claim loop,
    plus the fanout bookkeeping and the end-of-campaign merge.
    """

    def __init__(
        self,
        fleet_dir: os.PathLike,
        worker_id: Optional[str] = None,
        role: str = "worker",
        lease_ttl_s: float = 30.0,
        poll_s: float = 0.2,
        drain_timeout_s: float = 600.0,
        policy: Optional[RetryPolicy] = None,
    ):
        self.paths = _fleet_paths(fleet_dir)
        for name in (LEASES_DIR, EXPIRED_DIR, STORE_DIR, WORKERS_DIR):
            (self.paths["root"] / name).mkdir(parents=True, exist_ok=True)
        self.role = role
        self.worker_id = worker_id or "%s%d-%d" % (
            "c" if role == "coordinator" else "w",
            os.getpid(),
            int(time.time() * 1000) % 1_000_000_000,
        )
        self.lease_ttl_s = lease_ttl_s
        self.poll_s = poll_s
        self.drain_timeout_s = drain_timeout_s
        self.policy = policy or RetryPolicy()
        self.store = ArtifactStore(self.paths["store"], fsync=True)
        self.stats = FleetStats()
        self.shutdown = threading.Event()
        self.started = time.time()
        #: keys this process currently leases -> authoritative attempt.
        self._held: Dict[str, int] = {}
        self._lease_lock = threading.Lock()
        self._steal_seq = 0
        self.journal_path = self.paths["root"] / ("journal-%s.jsonl" % self.worker_id)

    @property
    def is_coordinator(self) -> bool:
        return self.role == "coordinator"

    # -- Worker lifecycle ----------------------------------------------

    def register(self) -> None:
        """Announce this executor (registration file + lifecycle event).

        The registration file is what ``--min-workers`` and the bench
        wait on; the event is what ``campaign status`` renders.
        """
        _atomic_write_json(
            {"worker": self.worker_id, "role": self.role, "pid": os.getpid(),
             "state": "running", "started_unix": round(self.started, 3)},
            self.paths["workers"] / ("%s.json" % self.worker_id),
        )
        eventbus.emit("worker_begin", worker=self.worker_id, role=self.role,
                      pid=os.getpid())
        eventbus.flush()

    def finish(self) -> None:
        """Final stats file + ``worker_end``, hard-flushed."""
        stats = self.stats
        _atomic_write_json(
            {"worker": self.worker_id, "role": self.role, "pid": os.getpid(),
             "state": "done", "started_unix": round(self.started, 3),
             "wall_s": round(time.time() - self.started, 3),
             "executed": stats.executed, "fetched": stats.fetched,
             "stolen": stats.stolen, "retried": stats.retried,
             "quarantined": stats.quarantined, "failed": stats.failed,
             "cell_s": round(stats.cell_s, 4),
             "coordination_s": round(stats.coordination_s, 4)},
            self.paths["workers"] / ("%s.json" % self.worker_id),
        )
        eventbus.emit(
            "worker_end", worker=self.worker_id, role=self.role,
            executed=stats.executed, fetched=stats.fetched, stolen=stats.stolen,
            wall_s=round(time.time() - self.started, 3),
        )
        eventbus.flush()

    def request_shutdown(self) -> None:
        self.shutdown.set()

    # -- Lease protocol ------------------------------------------------

    def _lease_path(self, key: str) -> Path:
        return self.paths["leases"] / ("lease-%s.json" % key)

    def _read_lease(self, key: str) -> Optional[dict]:
        """The current lease record, None when absent. An existing but
        unreadable/unparsable lease (should be impossible -- leases are
        only ever linked or replaced whole) degrades to an expired
        anonymous lease so it can be stolen rather than wedging the
        fleet."""
        path = self._lease_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            return json.loads(text)
        except ValueError:
            return {"key": key, "worker": "?", "attempt": 0, "deadline_unix": 0.0}

    def _lease_payload(self, key: str, attempt: int) -> dict:
        return {
            "key": key,
            "worker": self.worker_id,
            "attempt": attempt,
            "deadline_unix": round(time.time() + self.lease_ttl_s, 3),
        }

    def _try_acquire(self, key: str, attempt: int,
                     stolen_from: Optional[dict] = None) -> bool:
        """Claim ``key`` exclusively: write the lease to a temp file and
        hardlink it into place, so the winning claim is both atomic
        (full content appears at once -- no torn lease) and exclusive
        (``link`` fails with EEXIST for every loser). Falls back to
        ``O_CREAT | O_EXCL`` on filesystems without hardlinks.
        """
        started = time.perf_counter()
        path = self._lease_path(key)
        try:
            if path.exists():
                return False
            body = json.dumps(self._lease_payload(key, attempt), sort_keys=True)
            tmp = path.with_name(path.name + ".claim-%s" % self.worker_id)
            tmp.write_text(body)
            try:
                try:
                    os.link(tmp, path)
                except FileExistsError:
                    return False
                except OSError:
                    try:
                        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    except FileExistsError:
                        return False
                    with os.fdopen(fd, "w") as fp:
                        fp.write(body)
            finally:
                try:
                    tmp.unlink()
                except OSError:
                    pass
            with self._lease_lock:
                self._held[key] = attempt
            if stolen_from is not None:
                self.stats.stolen += 1
                eventbus.emit("lease_steal", cell=key[:16], worker=self.worker_id,
                              attempt=attempt,
                              victim=str(stolen_from.get("worker", "?")))
            else:
                eventbus.emit("lease_acquire", cell=key[:16], worker=self.worker_id,
                              attempt=attempt)
            eventbus.flush()
            return True
        finally:
            self.stats.coordination_s += time.perf_counter() - started

    def _renew_lease(self, key: str, attempt: Optional[int] = None) -> bool:
        """Re-arm the deadline (and optionally bump the attempt) of a
        lease we own. Returns False -- and forgets the lease -- when it
        is no longer ours (stolen while this process was presumed
        dead): a zombie must not clobber the stealer's lease."""
        with self._lease_lock:
            if key not in self._held:
                return False
            if attempt is not None:
                self._held[key] = attempt
            current = self._read_lease(key)
            if current is None or current.get("worker") != self.worker_id:
                self._held.pop(key, None)
                return False
            path = self._lease_path(key)
            tmp = path.with_name(path.name + ".beat-%s" % self.worker_id)
            tmp.write_text(
                json.dumps(self._lease_payload(key, self._held[key]), sort_keys=True)
            )
            os.replace(tmp, path)
            return True

    def _release_lease(self, key: str) -> bool:
        """Terminate our lease (owner-verified unlink + event). The
        unlink is the serialization point: whoever unlinks (owner or
        the coordinator's reclaim sweep) emits the one release."""
        started = time.perf_counter()
        try:
            with self._lease_lock:
                self._held.pop(key, None)
                current = self._read_lease(key)
                if current is None or current.get("worker") != self.worker_id:
                    return False  # stolen from under us; the steal accounted for it
                try:
                    self._lease_path(key).unlink()
                except OSError:
                    return False
            eventbus.emit("lease_release", cell=key[:16], worker=self.worker_id)
            eventbus.flush()
            return True
        finally:
            self.stats.coordination_s += time.perf_counter() - started

    def _try_steal(self, key: str, lease: dict) -> Optional[int]:
        """Reclaim an expired lease. The rename-to-tombstone is the
        mutex: exactly one stealer's ``os.replace`` finds the source,
        so exactly one ``lease_expire`` terminates the victim's lease.
        Returns the new attempt number once our replacement lease is in
        place, or None when another executor won either race.

        The rename alone is not enough: between this stealer's read of
        the stale lease and its rename, another stealer may have
        tombstoned it AND installed a fresh lease of its own -- which
        the rename would then happily tombstone, stealing a *live*
        lease and double-executing the cell. So after the rename we
        verify the tombstoned bytes are the stale lease we observed;
        anything else is live and is atomically put back."""
        started = time.perf_counter()
        try:
            path = self._lease_path(key)
            self._steal_seq += 1
            tombstone = self.paths["expired"] / (
                "%s.%s.a%d.s%d" % (path.name, self.worker_id,
                                   int(lease.get("attempt", 0)), self._steal_seq)
            )
            try:
                os.replace(path, tombstone)
            except OSError:
                return None  # someone else stole or released it first
            try:
                tombstoned = json.loads(tombstone.read_text())
            except (OSError, ValueError):
                tombstoned = None  # unreadable lease: stealable by design
            if tombstoned is not None and tombstoned != lease:
                try:
                    os.replace(tombstone, path)
                except OSError:
                    pass
                return None
            eventbus.emit("lease_expire", cell=key[:16],
                          worker=str(lease.get("worker", "?")),
                          attempt=int(lease.get("attempt", 0)))
            eventbus.flush()
        finally:
            self.stats.coordination_s += time.perf_counter() - started
        attempt = int(lease.get("attempt", 0)) + 1
        if self._try_acquire(key, attempt, stolen_from=lease):
            return attempt
        return None  # a fresh acquirer slipped in; its acquire balances the ledger

    def sweep_stale_leases(self) -> int:
        """Coordinator end-of-campaign sweep: release leases whose cell
        already has a published result (the owner died in the window
        between publish and release). Keeps the lease ledger balanced
        -- every acquire gets its release -- without guessing about
        leases whose work is genuinely unfinished."""
        reclaimed = 0
        for path in sorted(self.paths["leases"].glob("lease-*.json")):
            key = path.name[len("lease-"):-len(".json")]
            lease = self._read_lease(key)
            if lease is None or not self.store.path(key).exists():
                continue
            try:
                path.unlink()
            except OSError:
                continue
            reclaimed += 1
            self.stats.reclaimed += 1
            eventbus.emit("lease_release", cell=key[:16],
                          worker=str(lease.get("worker", "?")), reclaimed=True)
        if reclaimed:
            eventbus.flush()
        return reclaimed

    # -- Cell execution ------------------------------------------------

    def _account_fault(self, exc: BaseException, key: str, attempt: int) -> dict:
        record = faults.describe(exc)
        self.stats.count_fault(record["kind"])
        session = obs.session()
        if session is not None:
            counter = session.c_faults.get(record["kind"])
            if counter is not None:
                counter.inc()
        eventbus.emit("fault", cell=key[:16], attempt=attempt,
                      kind=record["kind"], error=record.get("error", "?"))
        return record

    def _journal_append(self, key: str, status: str, attempts: int, sha256: str) -> None:
        started = time.perf_counter()
        entry = {"key": key, "status": status, "attempts": attempts,
                 "sha256": sha256, "worker": self.worker_id}
        with open(self.journal_path, "a") as fp:
            fp.write(json.dumps(entry, sort_keys=True) + "\n")
            fp.flush()
        self.stats.coordination_s += time.perf_counter() - started

    def _execute_cell(self, fn: Callable[..., Any], args: Tuple, key: str,
                      attempt: int) -> Any:
        """Run one leased cell to a verdict: retry loop, publication,
        journal, lease release. The chaos ``worker_crash`` site is the
        real thing in a worker (``os._exit``: the lease goes stale and
        another executor steals it) and a raised fault in the
        coordinator (which must survive to merge)."""
        from .parallel import _call_unit

        wall_started = time.perf_counter()
        heartbeat = _Heartbeat(self, key)
        heartbeat.start()
        fault_list: List[dict] = []
        status, result = "failed", None
        final_attempt = attempt
        try:
            while True:
                eventbus.emit("cell_begin", cell=key[:16], unit=fn.__name__,
                              attempt=attempt)
                eventbus.flush()
                try:
                    faults.cell_prelude(key, attempt, in_child=not self.is_coordinator)
                    cell_started = time.perf_counter()
                    result = _call_unit(fn, args)
                    self.stats.cell_s += time.perf_counter() - cell_started
                    status = "ok"
                    final_attempt = attempt
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - the boundary's job
                    fault_list.append(self._account_fault(exc, key, attempt))
                    kind, retryable = faults.classify(exc)
                    final_attempt = attempt
                    if not retryable:
                        status, result = "quarantined", None
                        break
                    if attempt >= self.policy.max_attempts:
                        status, result = "failed", None
                        break
                    backoff = self.policy.backoff_s(key, attempt)
                    eventbus.emit("cell_retry", cell=key[:16], attempt=attempt + 1,
                                  backoff_s=round(backoff, 4), kind=kind)
                    self.shutdown.wait(backoff)
                    if self.shutdown.is_set():
                        raise FleetDrained(
                            "worker %s draining during backoff of cell %s"
                            % (self.worker_id, key[:12])
                        )
                    attempt += 1
                    self._renew_lease(key, attempt=attempt)
        except FleetDrained:
            heartbeat.stop()
            self._release_lease(key)  # hand unfinished work back to the fleet
            raise
        finally:
            heartbeat.stop()
        record = self.store.publish(key, status, result,
                                    attempts=final_attempt, worker=self.worker_id)
        self._journal_append(key, status, final_attempt, record.sha256)
        session = obs.session()
        if status == "ok" and final_attempt > 1:
            self.stats.retried += 1
            if session is not None:
                session.c_cells_retried.inc()
        elif status == "quarantined":
            self.stats.quarantined += 1
            if session is not None:
                session.c_cells_quarantined.inc()
        elif status == "failed":
            self.stats.failed += 1
        eventbus.emit("cell_end", cell=key[:16], status=status,
                      attempt=final_attempt,
                      wall_s=round(time.perf_counter() - wall_started, 4))
        self._release_lease(key)
        eventbus.flush()
        self.stats.executed += 1
        return result if status == "ok" else None

    def _accept(self, record) -> Any:
        """Fold a fetched store record into this executor's results."""
        self.stats.fetched += 1
        return record.result if record.ok else None

    # -- The fan-out entry point (via parallel.map_units) --------------

    def map_cells(self, fn: Callable[..., Any], arg_tuples: Sequence[Tuple]) -> List[Any]:
        """Fleet equivalent of :func:`repro.harness.parallel.map_units`.

        Two passes. First, a staggered claim scan: fetch what the fleet
        already published, lease and execute what nobody owns (each
        worker starts the scan at a different offset so claims rarely
        collide). Second, a wait/steal loop over the remainder: poll
        the store for other workers' results, take over cells whose
        lease is gone, and steal cells whose lease expired. Results
        return in submission order; degraded cells yield None -- the
        supervisor's graceful-degradation convention.
        """
        units = [tuple(args) for args in arg_tuples]
        keys = [cell_key(fn, args) for args in units]
        bus = eventbus.bus()
        if self.is_coordinator and bus is not None:
            bus.emit("fanout", unit=fn.__name__, cells=len(units), jobs="fleet")
            bus.flush()
        results: Dict[int, Any] = {}
        order = list(range(len(units)))
        if order:
            offset = int(
                hashlib.sha256(self.worker_id.encode("utf-8")).hexdigest()[:8], 16
            ) % len(order)
            order = order[offset:] + order[:offset]
        waiting: List[int] = []
        for index in order:
            if self.shutdown.is_set():
                raise FleetDrained("worker %s draining" % self.worker_id)
            key = keys[index]
            record = self._fetch(key)
            if record is not None:
                results[index] = self._accept(record)
            elif self._try_acquire(key, attempt=1):
                results[index] = self._execute_cell(fn, units[index], key, attempt=1)
            else:
                waiting.append(index)
        deadline = time.monotonic() + self.drain_timeout_s
        while waiting:
            progressed = False
            still: List[int] = []
            for index in waiting:
                key = keys[index]
                record = self._fetch(key, quiet=True)
                if record is not None:
                    results[index] = self._accept(record)
                    progressed = True
                    continue
                lease = self._read_lease(key)
                if lease is None:
                    # Released without a result (a drained worker handed
                    # it back) or never claimed: take it ourselves.
                    if self._try_acquire(key, attempt=1):
                        results[index] = self._execute_cell(
                            fn, units[index], key, attempt=1
                        )
                        progressed = True
                        continue
                elif float(lease.get("deadline_unix", 0.0)) < time.time():
                    attempt = self._try_steal(key, lease)
                    if attempt is not None:
                        if attempt > self.policy.max_attempts:
                            # The fleet as a whole exhausted the budget:
                            # publish the failure verdict so every waiter
                            # sees it instead of stealing forever.
                            record = self.store.publish(
                                key, "failed", None, attempts=attempt - 1,
                                worker=self.worker_id,
                            )
                            self._journal_append(key, "failed", attempt - 1,
                                                 record.sha256)
                            self.stats.failed += 1
                            eventbus.emit("cell_end", cell=key[:16], status="failed",
                                          attempt=attempt - 1)
                            self._release_lease(key)
                            eventbus.flush()
                            results[index] = None
                        else:
                            results[index] = self._execute_cell(
                                fn, units[index], key, attempt=attempt
                            )
                        progressed = True
                        continue
                still.append(index)
            waiting = still
            if waiting and not progressed:
                if self.shutdown.is_set():
                    raise FleetDrained("worker %s draining" % self.worker_id)
                if time.monotonic() > deadline:
                    raise faults.TransientIOFault(
                        "fleet drain timeout: %d cell(s) still unresolved after %.0fs"
                        % (len(waiting), self.drain_timeout_s)
                    )
                self.shutdown.wait(self.poll_s)
        return [results[index] for index in range(len(units))]

    def _fetch(self, key: str, quiet: bool = False):
        """Store read-through. ``quiet`` probes (the wait loop polling
        for another worker's publication) skip the miss accounting so a
        slow cell does not read as a thousand misses."""
        started = time.perf_counter()
        try:
            if quiet and not self.store.path(key).exists():
                return None
            return self.store.fetch(key)
        finally:
            self.stats.coordination_s += time.perf_counter() - started


# ----------------------------------------------------------------------
# Process-global activation (consulted by parallel.map_units)
# ----------------------------------------------------------------------

_active: Optional[FleetWorker] = None


def current() -> Optional[FleetWorker]:
    """The active fleet executor, or None (the non-fleet fast path)."""
    return _active


def activate(worker: FleetWorker) -> FleetWorker:
    global _active
    _active = worker
    eventbus._wire_chaos()
    return _active


def deactivate() -> None:
    global _active
    _active = None


if hasattr(os, "register_at_fork"):
    # A forked child of a fleet executor (a --jobs pool, if one ever
    # runs inside a cell) must execute its work directly, not re-enter
    # the fleet claim loop it inherited.
    os.register_at_fork(after_in_child=deactivate)


# ----------------------------------------------------------------------
# Campaign entry points (CLI: campaign run | campaign worker)
# ----------------------------------------------------------------------


def _load_manifest(path: Path) -> dict:
    manifest = json.loads(path.read_text())
    if not isinstance(manifest.get("argv"), list) or not manifest["argv"]:
        raise SystemExit("fleet manifest %s carries no inner command" % path)
    return manifest


def _write_manifest(path: Path, argv: Sequence[str], lease_ttl_s: float,
                    poll_s: float, retries: int, drain_timeout_s: float) -> dict:
    manifest = {
        "argv": list(argv),
        "lease_ttl_s": lease_ttl_s,
        "poll_s": poll_s,
        "retries": retries,
        "drain_timeout_s": drain_timeout_s,
        "created_unix": round(time.time(), 3),
    }
    if path.exists():
        existing = _load_manifest(path)
        if existing["argv"] != list(argv):
            raise SystemExit(
                "fleet dir %s already runs %r; refusing to mix campaigns"
                % (path.parent, " ".join(existing["argv"]))
            )
        return existing
    _atomic_write_json(manifest, path)
    return manifest


def _dispatch_inner(argv: Sequence[str], cache_dir: Path,
                    out_override: Optional[str] = None) -> int:
    """Parse and run the manifest's inner command in this process.

    The fleet owns parallelism and retries, so the inner command is
    forced serial (``--jobs 1``), pointed at the shared cache in
    durable mode, and never activates its own supervisor. Workers get
    their ``--out`` redirected to a worker-local file so only the
    coordinator writes the user's artifact.
    """
    from . import cli as cli_mod
    from .cache import CACHE_DIR_ENV, CACHE_SHARED_ENV

    parser = cli_mod.build_parser()
    args = parser.parse_args(list(argv))
    cli_mod.normalize_args(args)
    if args.command == "campaign":
        raise SystemExit("fleet campaigns cannot nest ('campaign %s' inside run)"
                         % getattr(args, "action", "?"))
    args.jobs = 1
    if not args.cache_dir:
        args.cache_dir = str(cache_dir)
    if out_override is not None:
        args.out = out_override
    os.environ[CACHE_DIR_ENV] = str(args.cache_dir)
    os.environ[CACHE_SHARED_ENV] = "1"
    rc = args.func(args)
    return int(rc) if rc else 0


def _merge_outputs(fleet_dir: Path, store: ArtifactStore) -> Tuple[int, int]:
    """The coordinator's merge: one canonical journal from the store
    (sorted by key, deterministic fields only -- ``attempts`` is chaos-
    dependent and deliberately excluded, so a chaos-killed campaign's
    journal is byte-identical to a clean one's) and one merged event
    stream from every worker's ``events-*.jsonl``."""
    lines: List[str] = []
    for key in store.keys():
        record = store.fetch(key, count_stats=False)
        if record is None:
            continue
        lines.append(json.dumps(
            {"key": key, "sha256": record.sha256, "status": record.status},
            sort_keys=True, separators=(",", ":"),
        ))
    journal_path = fleet_dir / MERGED_JOURNAL_NAME
    tmp = journal_path.with_name(journal_path.name + ".tmp.%d" % os.getpid())
    tmp.write_text("".join(line + "\n" for line in lines))
    os.replace(tmp, journal_path)
    streams = eventbus.load_streams(fleet_dir)
    merged_count = eventbus.write_merged(streams, fleet_dir / MERGED_EVENTS_NAME)
    return len(lines), merged_count


def _spawn_worker(fleet_dir: Path, index: int, wait_s: float) -> subprocess.Popen:
    """Launch one worker subprocess against the fleet directory. The
    child inherits the environment plus a PYTHONPATH that can resolve
    this package (the parent may have been launched via an installed
    entry point rather than PYTHONPATH=src)."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    parts = [package_root] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    log = open(fleet_dir / ("worker-%d.log" % index), "w")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "worker",
         "--fleet-dir", str(fleet_dir), "--wait", str(max(wait_s, 10.0))],
        stdout=log, stderr=subprocess.STDOUT, env=env,
    )


def run_campaign(
    fleet_dir: os.PathLike,
    inner_argv: Sequence[str],
    workers: int = 0,
    lease_ttl_s: float = 30.0,
    poll_s: float = 0.2,
    retries: Optional[int] = None,
    min_workers: int = 0,
    min_workers_wait_s: float = 60.0,
    drain_timeout_s: float = 600.0,
    worker_id: Optional[str] = None,
) -> int:
    """Coordinate one fleet campaign end to end.

    Writes the manifest, optionally spawns ``workers`` local worker
    processes (remote workers join by running ``campaign worker``
    against the same directory), executes the campaign as one more
    executor, then reaps workers, reclaims stale leases, and merges
    journals + event streams into the canonical artifacts.
    """
    paths = _fleet_paths(fleet_dir)
    paths["root"].mkdir(parents=True, exist_ok=True)
    manifest = _write_manifest(
        paths["manifest"], inner_argv, lease_ttl_s, poll_s,
        retries if retries is not None else 3, drain_timeout_s,
    )
    previous_bus = eventbus.bus()
    eventbus.configure(paths["root"])
    executor = FleetWorker(
        paths["root"], worker_id=worker_id, role="coordinator",
        lease_ttl_s=float(manifest["lease_ttl_s"]),
        poll_s=float(manifest["poll_s"]),
        drain_timeout_s=float(manifest["drain_timeout_s"]),
        policy=RetryPolicy(max_attempts=int(manifest["retries"])),
    )
    procs: List[subprocess.Popen] = []
    rc = 1
    try:
        executor.register()
        eventbus.emit("campaign_begin", command="fleet:%s" % inner_argv[0],
                      seed=0, jobs=workers + 1)
        started = time.time()
        for index in range(workers):
            procs.append(_spawn_worker(paths["root"], index, min_workers_wait_s))
        if min_workers > 0:
            _wait_for_registrations(paths["workers"], executor.worker_id,
                                    min_workers, min_workers_wait_s)
        activate(executor)
        try:
            rc = _dispatch_inner(manifest["argv"], paths["cache"])
        finally:
            deactivate()
        for proc in procs:
            try:
                proc.wait(timeout=drain_timeout_s)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
        executor.sweep_stale_leases()
        eventbus.emit("campaign_end", ok=not rc,
                      wall_s=round(time.time() - started, 3))
        executor.finish()
        cells, events = _merge_outputs(paths["root"], executor.store)
        print(executor.stats.summary_line())
        print(
            "fleet merge: %d cell(s) -> %s, %d event(s) -> %s"
            % (cells, paths["root"] / MERGED_JOURNAL_NAME,
               events, paths["root"] / MERGED_EVENTS_NAME)
        )
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
            if proc.stdout is not None:
                proc.stdout.close()
        eventbus.flush()
        if previous_bus is not None and previous_bus.directory is not None:
            eventbus.configure(previous_bus.directory)
        elif previous_bus is not None:
            eventbus.configure(None)
        else:
            eventbus.disable()
    return rc


def _wait_for_registrations(workers_dir: Path, own_id: str, minimum: int,
                            wait_s: float) -> None:
    deadline = time.monotonic() + wait_s
    while time.monotonic() < deadline:
        others = [p for p in workers_dir.glob("*.json")
                  if p.stem != own_id]
        if len(others) >= minimum:
            return
        time.sleep(0.05)
    raise SystemExit(
        "fleet: %d worker(s) never registered within %.0fs" % (minimum, wait_s)
    )


def run_worker(
    fleet_dir: os.PathLike,
    wait_s: float = 60.0,
    worker_id: Optional[str] = None,
) -> int:
    """One fleet worker: wait for the manifest, then execute the same
    deterministic inner command the coordinator runs -- the claim loop
    in :meth:`FleetWorker.map_cells` is what divides the work. SIGTERM
    drains: leases are released at the next boundary and the worker
    exits with :data:`DRAIN_EXIT`."""
    paths = _fleet_paths(fleet_dir)
    paths["root"].mkdir(parents=True, exist_ok=True)
    eventbus.configure(paths["root"])
    deadline = time.monotonic() + wait_s
    while not paths["manifest"].exists():
        if time.monotonic() > deadline:
            raise SystemExit(
                "fleet worker: no %s under %s after %.0fs"
                % (MANIFEST_NAME, paths["root"], wait_s)
            )
        time.sleep(0.1)
    manifest = _load_manifest(paths["manifest"])
    worker = FleetWorker(
        paths["root"], worker_id=worker_id, role="worker",
        lease_ttl_s=float(manifest.get("lease_ttl_s", 30.0)),
        poll_s=float(manifest.get("poll_s", 0.2)),
        drain_timeout_s=float(manifest.get("drain_timeout_s", 600.0)),
        policy=RetryPolicy(max_attempts=int(manifest.get("retries", 3))),
    )
    if hasattr(signal, "SIGTERM") and threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda signum, frame: worker.request_shutdown())
    worker.register()
    drained = False
    rc = 0
    activate(worker)
    try:
        rc = _dispatch_inner(
            manifest["argv"], paths["cache"],
            out_override=str(paths["root"] / ("worker-%s.out" % worker.worker_id)),
        )
    except FleetDrained:
        drained = True
    finally:
        deactivate()
        worker.finish()
        eventbus.flush()
    return DRAIN_EXIT if drained else rc
