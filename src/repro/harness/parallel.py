"""Process-pool fan-out for the experiment harness.

The experiment drivers decompose each table into independent *work
units* -- one (app, test, seed) or (bug, tool, seed) cell -- and run
them through :func:`map_units`. Because every unit is a deterministic
function of its picklable arguments (the simulator is virtual-time with
seeded RNGs), results are merged in *submission* order regardless of
completion order, so ``--jobs N`` produces bit-identical tables to a
serial run. The equivalence tests in ``tests/harness/test_parallel.py``
guard this property.

Work-unit functions must be module-level (picklable by reference) and
must take only picklable arguments: app/test/bug *names* rather than
objects, the frozen :class:`~repro.core.config.WaffleConfig`, plain
seeds, and an optional cache directory string. Workers rebuild
registries and caches on their side.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..obs import eventbus

#: Sentinel for "use one worker per unit, capped by the machine".
AUTO_JOBS = 0


def _flush_bus_for_cell() -> None:
    """End-of-cell durability for the campaign event bus, mirroring the
    telemetry split below: pool workers hard-flush (they can die without
    atexit), the main process batches."""
    bus = eventbus.bus()
    if bus is None:
        return
    if multiprocessing.parent_process() is not None:
        bus.flush()
    else:
        bus.maybe_flush()


def _call_unit(fn: Callable[..., Any], args: Tuple) -> Any:
    """Execute one work unit, wrapped in per-cell telemetry when active.

    Module-level so the process pool can pickle it by reference; in a
    worker process the session comes from the inherited
    ``WAFFLE_OBS_DIR`` environment variable (and the event bus from
    ``WAFFLE_EVENTS_DIR`` / the obs directory).
    """
    session = obs.session()
    if session is None:
        result = fn(*args)
        _flush_bus_for_cell()
        return result
    started = time.perf_counter()
    with session.tracer.span("cell", category="harness", unit=fn.__name__):
        result = fn(*args)
    session.c_cells.inc()
    session.h_cell_wall_ms.observe((time.perf_counter() - started) * 1000.0)
    if multiprocessing.parent_process() is not None:
        # Pool worker: it may be recycled or killed without running
        # atexit hooks, so a per-cell flush is what lands its telemetry
        # on disk. Cells are coarse enough that one append + summary
        # rewrite per cell is noise against a worker's wall time.
        session.flush()
    else:
        # Main process: the atexit hook and the CLI's end-of-command
        # flush provide durability, so batch the encode/write work
        # instead of paying it per cell (the largest single item of
        # enabled-path overhead before batching).
        session.maybe_flush()
    _flush_bus_for_cell()
    return result


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 -> serial, 0 -> cpu count."""
    if jobs is None:
        return 1
    if jobs == AUTO_JOBS:
        return os.cpu_count() or 1
    return max(1, jobs)


def map_units(
    fn: Callable[..., Any],
    arg_tuples: Sequence[Tuple],
    jobs: Optional[int] = 1,
) -> List[Any]:
    """Map ``fn`` over argument tuples, serially or via a process pool.

    Results come back in submission order independent of completion
    order, which keeps downstream merging deterministic. ``jobs <= 1``
    (or a single unit) bypasses the pool entirely so the serial path is
    byte-for-byte the pre-parallel code path.
    """
    from . import fleet
    from . import supervisor

    fleet_worker = fleet.current()
    if fleet_worker is not None:
        # Fleet campaign: this process is one executor of a multi-
        # process campaign; the fan-out becomes a claim scan over the
        # shared lease/store directory (see repro.harness.fleet). Takes
        # precedence over the supervisor -- the fleet owns retries.
        return fleet_worker.map_cells(fn, arg_tuples)
    active = supervisor.current()
    if active is not None:
        # Supervised campaign: watchdogs, retry/backoff, checkpoint-
        # resume (see repro.harness.supervisor). Off-path cost is this
        # one None check per experiment fan-out.
        return active.map(fn, arg_tuples, jobs)
    jobs = resolve_jobs(jobs)
    units = list(arg_tuples)
    bus = eventbus.bus()
    keys: List[str] = []
    if bus is not None:
        # Cell lifecycle is emitted from the coordinator only (workers
        # would double-count it); cells are identified by the same
        # content-addressed keys the supervisor and journal use.
        keys = [supervisor.cell_key(fn, tuple(args)) for args in units]
        bus.emit("fanout", unit=fn.__name__, cells=len(units), jobs=jobs)
    if jobs <= 1 or len(units) <= 1:
        if bus is None:
            return [_call_unit(fn, args) for args in units]
        results = []
        for key, args in zip(keys, units):
            bus.emit("cell_begin", cell=key[:16], unit=fn.__name__, attempt=1)
            started = time.perf_counter()
            results.append(_call_unit(fn, args))
            bus.emit("cell_end", cell=key[:16], status="ok", attempt=1,
                     wall_s=round(time.perf_counter() - started, 4))
            bus.maybe_flush()
        return results
    workers = min(jobs, len(units))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = []
        for index, args in enumerate(units):
            if bus is not None:
                bus.emit("cell_begin", cell=keys[index][:16], unit=fn.__name__, attempt=1)
            futures.append(executor.submit(_call_unit, fn, args))
        if bus is None:
            return [future.result() for future in futures]
        bus.flush()  # make cell_begin visible to live `campaign status`
        started = time.perf_counter()
        results = []
        for index, future in enumerate(futures):
            results.append(future.result())
            bus.emit("cell_end", cell=keys[index][:16], status="ok", attempt=1,
                     wall_s=round(time.perf_counter() - started, 4))
            bus.maybe_flush()
        return results


def chunked(items: Iterable[Any], size: int) -> List[List[Any]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    out: List[List[Any]] = []
    chunk: List[Any] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            out.append(chunk)
            chunk = []
    if chunk:
        out.append(chunk)
    return out
