"""Fault-tolerant campaign supervisor: watchdogs, retries, resume.

Waffle's evaluation is a long campaign, and delay injection
deliberately drives target programs into crashes, deadlocks and
timeouts. The harness fans cells out across processes
(:mod:`repro.harness.parallel`), so a single hung detection run,
OOM-killed pool worker or torn cache record must degrade one cell --
not take down or silently poison the whole ``--jobs`` campaign. The
supervisor wraps every cell execution in a fault boundary:

* **Watchdog** -- each cell gets a wall-clock deadline derived from the
  same ``TIMEOUT_FACTOR`` logic :mod:`repro.harness.runner` applies to
  individual simulated tests (factor x the median observed cell time,
  floored), so a wedged worker is killed rather than waited on forever.
  Serially the watchdog is a SIGALRM timer; under ``--jobs`` each cell
  runs in its own forked process that can be terminated individually
  (a pool executor cannot kill one hung member).
* **Retry with backoff** -- faults are classified by
  :func:`repro.harness.faults.classify`: *retryable* ones (worker
  crash, hang, transient I/O, corrupt record) are re-attempted under an
  exponential-backoff schedule with seeded, deterministic jitter, up to
  a per-cell attempt budget; *deterministic* ones (assertion failures,
  schema errors) are quarantined immediately -- the same inputs would
  fail identically, so retrying burns budget without information.
* **Checkpoint-resume** -- an optional :class:`CampaignJournal` records
  every finalized cell (keyed by the same content-addressed digests the
  run cache uses) together with a checksummed pickle of its result, so
  ``--resume`` skips finished work and re-attempts only the failure
  tail. Because every cell is a deterministic function of its
  arguments, a resumed campaign is bit-identical to an uninterrupted
  one -- the property the resume tests guard.
* **Crash dossiers** -- every fault is captured as a JSON dossier
  (fault taxonomy record plus a flight-recorder snapshot when one is
  installed) before the worker is torn down.

The supervisor is **opt-in**: :func:`repro.harness.parallel.map_units`
consults :func:`current` and takes its historical path when no
supervisor is active, so the unsupervised hot path pays one function
call per *experiment* (not per cell). ``benchmarks/bench_resilience.py``
guards that budget.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs import eventbus
from ..core.persistence import save_record
from . import faults
from .runner import TIMEOUT_FACTOR, TIMEOUT_FLOOR_MS

#: Watchdog floor, inherited from the per-test timeout convention.
WATCHDOG_FLOOR_S = TIMEOUT_FLOOR_MS / 1000.0

#: Deadline applied before enough cells have completed to estimate one
#: (deliberately generous: a false kill costs a retry, a false wait
#: costs the whole campaign).
WATCHDOG_WARMUP_S = 600.0

#: Completed-cell sample size needed before the adaptive deadline
#: replaces the warm-up deadline.
WATCHDOG_MIN_SAMPLES = 3

JOURNAL_NAME = "journal.jsonl"


def _jsonable(value: Any) -> Any:
    """Canonical JSON projection of a cell argument (for cell keys)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__dc__": type(value).__name__, **_jsonable(dataclasses.asdict(value))}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cell_key(fn: Callable[..., Any], args: Tuple) -> str:
    """Content-addressed identity of one cell: function + arguments.

    The same digest discipline as the run cache: SHA-256 over a
    canonical JSON encoding, so the key is stable across processes and
    campaign restarts -- the anchor checkpoint-resume hangs off.
    """
    blob = json.dumps(
        {"fn": "%s.%s" % (fn.__module__, fn.__qualname__), "args": _jsonable(list(args))},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclasses.dataclass
class RetryPolicy:
    """Exponential backoff with seeded, deterministic jitter.

    The jitter draw is a pure function of ``(seed, cell key, attempt)``
    -- same SHA-256 discipline as the chaos harness -- so a retry
    schedule is exactly reproducible, which the backoff-determinism
    test relies on.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Cap on the *sum* of a cell's backoff delays, not just each delay.
    #: A generous --retries with an unlucky jitter draw must not turn
    #: one flaky cell into minutes of accumulated sleeping (a draining
    #: fleet worker would sit on its lease the whole time). None
    #: disables the cap.
    backoff_total_max_s: Optional[float] = 20.0
    jitter: float = 0.25
    seed: int = 0

    def _raw_backoff_s(self, key: str, attempt: int) -> float:
        """The per-attempt schedule before the cumulative cap."""
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * (self.backoff_factor ** max(0, attempt - 1)),
        )
        if self.jitter <= 0.0:
            return base
        blob = "%d|backoff|%s|%d" % (self.seed, key, attempt)
        digest = hashlib.sha256(blob.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        # Spread over [base*(1-jitter), base*(1+jitter)].
        return base * (1.0 - self.jitter + 2.0 * self.jitter * draw)

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before retrying ``key`` after failed attempt ``attempt``.

        Deterministic like the raw schedule (a pure function of the
        policy fields, key and attempt), but clamped so the cumulative
        delay across a cell's whole retry tail never exceeds
        :attr:`backoff_total_max_s`: each attempt draws from whatever
        budget the earlier attempts left.
        """
        if self.backoff_total_max_s is None:
            return self._raw_backoff_s(key, attempt)
        budget = self.backoff_total_max_s
        draw = 0.0
        for index in range(1, attempt + 1):
            draw = min(self._raw_backoff_s(key, index), max(0.0, budget))
            budget -= draw
        return draw

    def backoff_schedule(self, key: str) -> List[float]:
        """The full retry schedule for ``key`` (one entry per retry)."""
        return [self.backoff_s(key, attempt) for attempt in range(1, self.max_attempts)]


# ----------------------------------------------------------------------
# Campaign journal (checkpoint-resume)
# ----------------------------------------------------------------------


class CampaignJournal:
    """Append-only ledger of finalized cells plus checksummed results.

    One JSONL line per finalized cell (``ok`` | ``quarantined`` |
    ``failed``) and, for ``ok`` cells, an atomically-written pickle of
    the result whose SHA-256 is recorded in the line. On load, a
    truncated tail line (campaign killed mid-append) is tolerated and
    an ``ok`` entry whose pickle is missing or fails its checksum is
    dropped -- the cell simply reruns. Only ``ok`` cells are skipped on
    resume; the failure tail is always re-attempted.
    """

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_NAME
        self.entries: Dict[str, dict] = {}
        self.recovered_truncated = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        lines = self.path.read_text().splitlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # Torn tail: the campaign died mid-append. The cell
                    # was never acknowledged, so dropping the line is
                    # exactly a rerun of that cell.
                    self.recovered_truncated += 1
                    continue
                raise faults.CorruptRecordFault(
                    "journal %s: undecodable line %d (not the tail)" % (self.path, index + 1)
                )
            self.entries[entry["key"]] = entry

    def result_path(self, key: str) -> Path:
        return self.directory / ("result-%s.pkl" % key)

    def record(self, key: str, status: str, attempts: int, fault_list: List[dict],
               result: Any = None) -> None:
        entry: Dict[str, Any] = {"key": key, "status": status, "attempts": attempts}
        if fault_list:
            entry["faults"] = fault_list
        if status == "ok":
            blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            entry["sha256"] = hashlib.sha256(blob).hexdigest()
            target = self.result_path(key)
            tmp = target.with_name(target.name + ".tmp.%d" % os.getpid())
            tmp.write_bytes(blob)
            os.replace(tmp, target)
        self.entries[key] = entry
        with open(self.path, "a") as fp:
            fp.write(json.dumps(entry, sort_keys=True) + "\n")
            fp.flush()
        eventbus.emit("checkpoint", cell=key[:16], status=status, attempts=attempts)

    def load_result(self, key: str) -> Any:
        """The journaled result for an ``ok`` cell, checksum-verified.

        Raises :class:`~repro.harness.faults.CorruptRecordFault` when
        the pickle is missing, truncated or fails its digest; callers
        treat that as "not finished" and rerun the cell.
        """
        entry = self.entries.get(key)
        if entry is None or entry.get("status") != "ok":
            raise faults.CorruptRecordFault("journal has no completed result for %s" % key)
        path = self.result_path(key)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise faults.CorruptRecordFault("result pickle unreadable: %s" % exc)
        if hashlib.sha256(blob).hexdigest() != entry.get("sha256"):
            raise faults.CorruptRecordFault("result pickle failed checksum: %s" % path)
        return pickle.loads(blob)


# ----------------------------------------------------------------------
# Campaign statistics (the degradation summary)
# ----------------------------------------------------------------------


@dataclasses.dataclass
class CampaignStats:
    ok: int = 0
    retried: int = 0  # cells that needed >1 attempt but finished ok
    quarantined: int = 0  # deterministic fault: never retried
    failed: int = 0  # retryable fault that exhausted the attempt budget
    resumed: int = 0  # cells satisfied from the journal without running
    fault_counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def cells(self) -> int:
        return self.ok + self.quarantined + self.failed + self.resumed

    def count_fault(self, kind: str) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1

    def summary_line(self) -> str:
        """The end-of-run degradation summary the CLI prints."""
        parts = [
            "%d cells ok" % (self.ok + self.resumed),
            "%d retried" % self.retried,
            "%d quarantined" % self.quarantined,
        ]
        if self.failed:
            parts.append("%d failed" % self.failed)
        if self.resumed:
            parts.append("%d resumed from journal" % self.resumed)
        line = "supervisor: " + ", ".join(parts)
        if self.fault_counts:
            line += " (faults: %s)" % ", ".join(
                "%s=%d" % (kind, count) for kind, count in sorted(self.fault_counts.items())
            )
        return line


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------


class _RemoteFault(faults.HarnessFault):
    """A fault that occurred in a worker process, rehydrated from its
    JSON description (arbitrary exceptions do not pickle reliably)."""

    def __init__(self, record: Dict[str, Any]):
        super().__init__("%s: %s" % (record.get("error", "?"), record.get("detail", "")))
        self.kind = record.get("kind", faults.DETERMINISTIC)
        self.retryable = bool(record.get("retryable", False))


def _child_entry(conn, fn, args, key: str, attempt: int) -> None:
    """Worker body for one supervised parallel cell.

    Runs the chaos prelude (an injected crash here is a real
    ``os._exit`` with no result, exactly like an OOM-killed worker),
    executes the cell through the same ``_call_unit`` wrapper the pool
    path uses (per-cell telemetry + flush), and ships back either the
    result or a JSON-safe fault description.
    """
    try:
        faults.cell_prelude(key, attempt, in_child=True)
        from .parallel import _call_unit

        result = _call_unit(fn, args)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - the boundary's job
        try:
            conn.send(("err", faults.describe(exc)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class Supervisor:
    """Fault boundary around a campaign's cell executions.

    Activate with :func:`activate` (or the :func:`supervised` context
    manager); :func:`repro.harness.parallel.map_units` routes through
    :meth:`map` while one is active.
    """

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        journal: Optional[CampaignJournal] = None,
        cell_timeout_s: Optional[float] = None,
        dossier_dir: Optional[os.PathLike] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.policy = policy or RetryPolicy()
        self.journal = journal
        self.cell_timeout_s = cell_timeout_s
        self.stats = CampaignStats()
        #: Set (from a signal handler or another thread) to drain: the
        #: interruptible backoff sleep returns immediately, the current
        #: retry tail is finalized as failed, and no new cell starts --
        #: so a fleet worker can release its lease promptly instead of
        #: sleeping through a backoff with the lease held.
        self.shutdown = threading.Event()
        self.sleep = sleep if sleep is not None else self._interruptible_sleep
        self._dossier_dir = Path(dossier_dir) if dossier_dir is not None else None
        self._wall_times: List[float] = []
        self._dossiers_written = 0

    def request_shutdown(self) -> None:
        """Ask the supervisor to drain at the next fault boundary."""
        self.shutdown.set()

    def _interruptible_sleep(self, seconds: float) -> None:
        """The default backoff sleep: wakes early on :attr:`shutdown`."""
        if seconds > 0.0:
            self.shutdown.wait(seconds)

    # -- Watchdog ------------------------------------------------------

    def watchdog_s(self) -> float:
        """Per-cell wall-clock deadline.

        An explicit ``--cell-timeout`` wins; otherwise the deadline
        adapts to the campaign: ``TIMEOUT_FACTOR`` x the median
        completed-cell wall time (floored), the same convention
        :func:`repro.harness.runner.test_time_limit` applies to
        individual simulated tests. Until enough cells have completed
        to estimate, a generous warm-up deadline applies.
        """
        if self.cell_timeout_s is not None:
            return self.cell_timeout_s
        if len(self._wall_times) < WATCHDOG_MIN_SAMPLES:
            return WATCHDOG_WARMUP_S
        ordered = sorted(self._wall_times)
        median = ordered[len(ordered) // 2]
        return max(WATCHDOG_FLOOR_S, TIMEOUT_FACTOR * median)

    @contextmanager
    def _serial_watchdog(self, deadline_s: float, key: str):
        """SIGALRM-based deadline for the serial path (main thread only;
        elsewhere the cell runs unguarded rather than unsupervised)."""
        usable = (
            hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def _on_alarm(signum, frame):
            raise faults.CellHangFault(
                "cell %s exceeded its %.1fs watchdog" % (key[:12], deadline_s)
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, deadline_s)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    # -- Dossiers and accounting ---------------------------------------

    def _dossier_target(self) -> Optional[Path]:
        if self._dossier_dir is not None:
            return self._dossier_dir
        if self.journal is not None:
            return self.journal.directory
        session = obs.session()
        if session is not None:
            return session.directory
        return None

    def _write_dossier(self, key: str, attempt: int, fault_record: dict) -> None:
        """Capture fault context (including flight-recorder state) as a
        crash dossier before the cell is finalized or retried."""
        target = self._dossier_target()
        if target is None:
            return
        flight = obs.flightrec.recorder()
        payload = {
            "cell": key,
            "attempt": attempt,
            "fault": fault_record,
            "unix_time": round(time.time(), 3),
            "flightrec": flight.snapshot()[-256:] if flight is not None else None,
        }
        self._dossiers_written += 1
        try:
            save_record(payload, Path(target) / ("crash-%s-a%d.json" % (key[:16], attempt)))
        except OSError:
            pass  # a dossier must never take down the campaign

    def _account_fault(self, exc: BaseException, key: str, attempt: int) -> dict:
        record = faults.describe(exc)
        self.stats.count_fault(record["kind"])
        session = obs.session()
        if session is not None:
            counter = session.c_faults.get(record["kind"])
            if counter is not None:
                counter.inc()
        flight = obs.flightrec.recorder()
        if flight is not None:
            flight.record("cell_fault", cell=key[:16], attempt=attempt, kind=record["kind"])
        eventbus.emit(
            "fault",
            cell=key[:16],
            attempt=attempt,
            kind=record["kind"],
            error=record.get("error", "?"),
        )
        self._write_dossier(key, attempt, record)
        return record

    def _finalize_ok(self, key: str, result: Any, attempt: int, fault_list: List[dict],
                     wall_s: Optional[float]) -> Any:
        self.stats.ok += 1
        if attempt > 1:
            self.stats.retried += 1
            session = obs.session()
            if session is not None:
                session.c_cells_retried.inc()
        if wall_s is not None:
            self._wall_times.append(wall_s)
        if self.journal is not None:
            self.journal.record(key, "ok", attempt, fault_list, result=result)
        bus = eventbus.bus()
        if bus is not None:
            bus.emit("cell_end", cell=key[:16], status="ok", attempt=attempt,
                     wall_s=round(wall_s, 4) if wall_s is not None else 0.0)
            bus.maybe_flush()
        return result

    def _finalize_degraded(self, key: str, status: str, attempt: int,
                           fault_list: List[dict]) -> None:
        if status == "quarantined":
            self.stats.quarantined += 1
            session = obs.session()
            if session is not None:
                session.c_cells_quarantined.inc()
        else:
            self.stats.failed += 1
        if self.journal is not None:
            self.journal.record(key, status, attempt, fault_list)
        bus = eventbus.bus()
        if bus is not None:
            bus.emit("cell_end", cell=key[:16], status=status, attempt=attempt)
            bus.flush()  # degraded cells are rare and worth immediate durability

    # -- Resume --------------------------------------------------------

    def _try_resume(self, key: str) -> Tuple[bool, Any]:
        """(hit, result): satisfy a cell from the journal when possible."""
        if self.journal is None:
            return False, None
        entry = self.journal.entries.get(key)
        if entry is None or entry.get("status") != "ok":
            return False, None
        try:
            result = self.journal.load_result(key)
        except faults.CorruptRecordFault:
            return False, None  # rerun; the journal entry is superseded
        self.stats.resumed += 1
        session = obs.session()
        if session is not None:
            session.c_cells_resumed.inc()
        eventbus.emit("cell_resumed", cell=key[:16])
        return True, result

    # -- Serial execution ----------------------------------------------

    def _run_cell_serial(self, fn: Callable[..., Any], args: Tuple, key: str) -> Any:
        from .parallel import _call_unit

        fault_list: List[dict] = []
        for attempt in range(1, self.policy.max_attempts + 1):
            eventbus.emit("cell_begin", cell=key[:16], unit=fn.__name__, attempt=attempt)
            started = time.perf_counter()
            try:
                with self._serial_watchdog(self.watchdog_s(), key):
                    faults.cell_prelude(key, attempt, in_child=False)
                    result = _call_unit(fn, args)
                return self._finalize_ok(
                    key, result, attempt, fault_list, time.perf_counter() - started
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - the boundary's job
                fault_list.append(self._account_fault(exc, key, attempt))
                kind, retryable = faults.classify(exc)
                if isinstance(exc, faults.CellHangFault):
                    eventbus.emit("watchdog", cell=key[:16],
                                  deadline_s=round(self.watchdog_s(), 3))
                if not retryable:
                    self._finalize_degraded(key, "quarantined", attempt, fault_list)
                    return None
                if attempt >= self.policy.max_attempts:
                    self._finalize_degraded(key, "failed", attempt, fault_list)
                    return None
                backoff = self.policy.backoff_s(key, attempt)
                eventbus.emit("cell_retry", cell=key[:16], attempt=attempt + 1,
                              backoff_s=round(backoff, 4), kind=kind)
                self.sleep(backoff)
                if self.shutdown.is_set():
                    # Draining: finalize the tail as failed rather than
                    # holding resources (a fleet lease, a terminal)
                    # through the remaining attempts.
                    self._finalize_degraded(key, "failed", attempt, fault_list)
                    return None
        return None  # unreachable

    # -- Parallel execution --------------------------------------------

    def _run_parallel(
        self,
        fn: Callable[..., Any],
        units: List[Tuple],
        keys: List[str],
        pending: List[int],
        results: List[Any],
        workers: int,
    ) -> None:
        """Own process-per-cell fan-out (bounded by ``workers``).

        A ``ProcessPoolExecutor`` cannot kill one wedged member, so the
        supervised path runs each cell in its own forked process with a
        pipe back; a cell past its deadline is terminated individually
        and the rest of the campaign proceeds.
        """
        import multiprocessing
        from multiprocessing.connection import wait as conn_wait

        ctx = multiprocessing.get_context("fork")
        # (index, attempt, ready_at_monotonic, accumulated fault records)
        queue: List[Tuple[int, int, float, List[dict]]] = [
            (index, 1, 0.0, []) for index in pending
        ]
        inflight: Dict[Any, dict] = {}  # parent conn -> cell state

        def launch(index: int, attempt: int, fault_list: List[dict]) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_entry,
                args=(child_conn, fn, units[index], keys[index], attempt),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            eventbus.emit("cell_begin", cell=keys[index][:16], unit=fn.__name__,
                          attempt=attempt)
            eventbus.flush()  # visible to live `campaign status` immediately
            inflight[parent_conn] = {
                "index": index,
                "attempt": attempt,
                "proc": proc,
                "faults": fault_list,
                "started": time.monotonic(),
                "deadline": time.monotonic() + self.watchdog_s(),
            }

        def settle(conn, cell: dict, exc: Optional[BaseException], result: Any) -> None:
            index, attempt = cell["index"], cell["attempt"]
            key = keys[index]
            cell["proc"].join(timeout=5.0)
            conn.close()
            if exc is None:
                results[index] = self._finalize_ok(
                    key, result, attempt, cell["faults"],
                    time.monotonic() - cell["started"],
                )
                return
            cell["faults"].append(self._account_fault(exc, key, attempt))
            kind, retryable = faults.classify(exc)
            if not retryable:
                self._finalize_degraded(key, "quarantined", attempt, cell["faults"])
            elif attempt >= self.policy.max_attempts:
                self._finalize_degraded(key, "failed", attempt, cell["faults"])
            else:
                backoff = self.policy.backoff_s(key, attempt)
                eventbus.emit("cell_retry", cell=key[:16], attempt=attempt + 1,
                              backoff_s=round(backoff, 4), kind=kind)
                ready_at = time.monotonic() + backoff
                queue.append((index, attempt + 1, ready_at, cell["faults"]))

        while queue or inflight:
            if self.shutdown.is_set():
                # Draining: kill in-flight workers and finalize every
                # cell still owed a result as failed, promptly.
                for conn, cell in list(inflight.items()):
                    proc = cell["proc"]
                    proc.terminate()
                    proc.join(timeout=2.0)
                    if proc.is_alive():
                        proc.kill()
                    conn.close()
                    self._finalize_degraded(
                        keys[cell["index"]], "failed", cell["attempt"], cell["faults"]
                    )
                inflight.clear()
                for index, attempt, _, fault_list in queue:
                    self._finalize_degraded(keys[index], "failed", attempt, fault_list)
                queue.clear()
                break
            now = time.monotonic()
            # Launch every ready cell a worker slot exists for.
            queue.sort(key=lambda item: item[2])
            while queue and len(inflight) < workers and queue[0][2] <= now:
                index, attempt, _, fault_list = queue.pop(0)
                launch(index, attempt, fault_list)
            if not inflight:
                if queue:  # everything is backing off: sleep to the nearest retry
                    self.sleep(max(0.0, queue[0][2] - time.monotonic()))
                continue
            # Wait for messages, worker deaths, or the nearest deadline.
            next_deadline = min(cell["deadline"] for cell in inflight.values())
            timeout = max(0.0, min(0.25, next_deadline - time.monotonic()))
            ready = conn_wait(list(inflight.keys()), timeout=timeout)
            for conn in ready:
                cell = inflight.pop(conn)
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    # The pipe died with no message: the worker crashed
                    # (chaos os._exit, OOM kill, segfault).
                    cell["proc"].join(timeout=5.0)
                    settle(
                        conn,
                        cell,
                        faults.WorkerCrashFault(
                            "worker for cell %s died without a result (exit %s)"
                            % (keys[cell["index"]][:12], cell["proc"].exitcode),
                            exitcode=cell["proc"].exitcode,
                        ),
                        None,
                    )
                    continue
                if status == "ok":
                    settle(conn, cell, None, payload)
                else:
                    settle(conn, cell, _RemoteFault(payload), None)
            # Enforce deadlines on whatever is still in flight.
            now = time.monotonic()
            for conn in [c for c, cell in inflight.items() if cell["deadline"] <= now]:
                cell = inflight.pop(conn)
                proc = cell["proc"]
                hang = faults.CellHangFault(
                    "cell %s exceeded its %.1fs watchdog; worker pid %s killed"
                    % (keys[cell["index"]][:12], cell["deadline"] - cell["started"], proc.pid)
                )
                eventbus.emit(
                    "watchdog",
                    cell=keys[cell["index"]][:16],
                    deadline_s=round(cell["deadline"] - cell["started"], 3),
                )
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                settle(conn, cell, hang, None)

    # -- Entry point ---------------------------------------------------

    def map(self, fn: Callable[..., Any], arg_tuples: Sequence[Tuple],
            jobs: Optional[int] = 1) -> List[Any]:
        """Supervised equivalent of :func:`repro.harness.parallel.map_units`.

        Results come back in submission order; a quarantined or
        retry-exhausted cell yields ``None`` at its position (graceful
        degradation) and is counted in :attr:`stats`.
        """
        from .parallel import resolve_jobs

        units = [tuple(args) for args in arg_tuples]
        keys = [cell_key(fn, args) for args in units]
        eventbus.emit("fanout", unit=fn.__name__, cells=len(units),
                      jobs=resolve_jobs(jobs))
        results: List[Any] = [None] * len(units)
        pending: List[int] = []
        for index, key in enumerate(keys):
            hit, result = self._try_resume(key)
            if hit:
                results[index] = result
            else:
                pending.append(index)
        if not pending:
            return results
        jobs = resolve_jobs(jobs)
        if jobs <= 1 or len(pending) <= 1:
            for index in pending:
                results[index] = self._run_cell_serial(fn, units[index], keys[index])
        else:
            self._run_parallel(fn, units, keys, pending, results, min(jobs, len(pending)))
        return results


# ----------------------------------------------------------------------
# Process-global activation (consulted by parallel.map_units)
# ----------------------------------------------------------------------

_active: Optional[Supervisor] = None


def current() -> Optional[Supervisor]:
    """The active supervisor, or None (the unsupervised fast path)."""
    return _active


def activate(supervisor: Supervisor) -> Supervisor:
    global _active
    _active = supervisor
    # The event bus may have been configured before the harness (and its
    # fault taxonomy) finished importing; re-wire the chaos observer now
    # that both sides exist.
    eventbus._wire_chaos()
    return _active


def deactivate() -> None:
    global _active
    _active = None


@contextmanager
def supervised(
    policy: Optional[RetryPolicy] = None,
    journal: Optional[CampaignJournal] = None,
    cell_timeout_s: Optional[float] = None,
    **kwargs: Any,
):
    """Scoped activation: every ``map_units`` call inside the block runs
    under this supervisor."""
    supervisor = Supervisor(
        policy=policy, journal=journal, cell_timeout_s=cell_timeout_s, **kwargs
    )
    activate(supervisor)
    try:
        yield supervisor
    finally:
        deactivate()


if hasattr(os, "register_at_fork"):
    # A supervised cell's worker must run its cell directly, not
    # re-enter the supervisor it inherited over fork.
    os.register_at_fork(after_in_child=deactivate)
