"""One driver per paper table/figure (DESIGN.md section 4).

Every function returns plain dataclasses so the renderers in
:mod:`repro.harness.tables`, the pytest benchmarks and the CLI can share
results. Paper-reported values are carried alongside measured ones so
EXPERIMENTS.md tables can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import all_apps, all_bugs, bug_workload
from ..apps.base import Application, AppTestCase, KnownBug
from ..baselines import ALL_ABLATIONS, DESIGN_POINT_LABELS, StressRunner, Tsvd, WaffleBasic
from ..core.candidates import CandidateSet
from ..core.config import DEFAULT_CONFIG, WaffleConfig
from ..core.delay_policy import DecayState
from ..core.detector import DetectionOutcome, Waffle
from ..core.nearmiss import TsvNearMissTracker
from ..sim.api import Simulation
from ..sim.errors import NullReferenceError
from ..sim.instrument import InstrumentationHook
from . import metrics
from .runner import (
    analyze_test,
    run_baseline,
    run_online_detection,
    run_planned_detection,
    run_recording,
    test_time_limit,
)


def _apps(subset: Optional[Sequence[str]] = None) -> List[Application]:
    registry = all_apps()
    if subset is None:
        return list(registry.values())
    return [registry[name] for name in subset]


# ======================================================================
# Table 2 -- instrumentation and injection site densities
# ======================================================================


@dataclass
class Table2Row:
    app: str
    tsv_instr_sites: float
    mo_instr_sites: float
    tsv_injection_sites: float
    mo_injection_sites: float


def table2_sites(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Table2Row]:
    """Average unique static instrumentation and injection sites per
    test input, for the TSV (Tsvd) and MemOrder (Waffle) surfaces."""
    rows: List[Table2Row] = []
    for app in _apps(apps):
        tsv_instr: List[int] = []
        mo_instr: List[int] = []
        tsv_inject: List[int] = []
        mo_inject: List[int] = []
        for test in app.multithreaded_tests:
            _, trace = run_recording(test, config, seed=seed)
            mo_instr.append(len(trace.static_sites(memorder=True)))
            tsv_instr.append(len(trace.static_sites(memorder=False)))
            from ..core.analyzer import analyze_trace

            plan = analyze_trace(trace, config)
            mo_inject.append(len(plan.candidates.delay_locations))
            tsv_tracker = TsvNearMissTracker(config.near_miss_window_ms)
            tsv_tracker.observe_all(trace.sorted_events())
            tsv_inject.append(len(tsv_tracker.candidates.delay_locations))
        count = max(1, len(app.multithreaded_tests))
        rows.append(
            Table2Row(
                app=app.display_name,
                tsv_instr_sites=sum(tsv_instr) / count,
                mo_instr_sites=sum(mo_instr) / count,
                tsv_injection_sites=sum(tsv_inject) / count,
                mo_injection_sites=sum(mo_inject) / count,
            )
        )
    return rows


# ======================================================================
# Figure 2 -- timing conditions for TSVs vs MemOrder bugs
# ======================================================================


@dataclass
class Figure2Point:
    delay_ms: float
    tsv_exposed: bool
    memorder_exposed: bool


class _FixedDelayAt(InstrumentationHook):
    """Inject a fixed delay at exactly one static site (microbench aid)."""

    def __init__(self, site: str, delay_ms: float):
        self.site = site
        self.delay_ms = delay_ms

    def before_access(self, pending) -> float:
        return self.delay_ms if pending.location.site == self.site else 0.0


def _figure2_tsv_scenario(sim: Simulation) -> object:
    """API call 1 (thread 1) ends well before API call 2 (thread 2):
    only a delay within (T3-T2, T4-T1) makes the windows overlap."""
    table = sim.unsafe_dict("fig2.Dict")

    def caller_one():
        yield from sim.unsafe_call(table, "add", "k", 1, loc="fig2.call1", duration=3.0)

    def caller_two():
        yield from sim.sleep(10.0)
        yield from sim.unsafe_call(table, "add", "k", 2, loc="fig2.call2", duration=3.0)

    def root():
        a = sim.fork(caller_one(), name="fig2-one")
        b = sim.fork(caller_two(), name="fig2-two")
        yield from sim.join(a)
        yield from sim.join(b)

    return root()


def _figure2_memorder_scenario(sim: Simulation) -> object:
    """Use at t=0 (thread 2), dispose at t=10 (thread 1): only a delay
    longer than the whole gap (delay > T4-T1) exposes the bug."""
    ref = sim.ref("fig2_obj")

    def user():
        yield from sim.use(ref, member="Touch", loc="fig2.use")

    def root():
        yield from sim.assign(ref, sim.new("fig2.Obj"), loc="fig2.init")
        worker = sim.fork(user(), name="fig2-user")
        yield from sim.sleep(10.0)
        yield from sim.dispose(ref, loc="fig2.dispose")
        yield from sim.join(worker)

    return root()


def figure2_timing_conditions(
    delays_ms: Sequence[float] = (0, 2, 4, 6, 8, 9, 11, 12, 14, 16, 20, 30),
    seed: int = 0,
) -> List[Figure2Point]:
    points: List[Figure2Point] = []
    for delay in delays_ms:
        sim = Simulation(seed=seed, hook=_FixedDelayAt("fig2.call1", float(delay)))
        result = sim.run(_figure2_tsv_scenario(sim))
        tsv_exposed = bool(result.tsv_occurrences)

        sim = Simulation(seed=seed, hook=_FixedDelayAt("fig2.use", float(delay)))
        result = sim.run(_figure2_memorder_scenario(sim))
        memorder_exposed = result.crashed and isinstance(
            result.first_failure(), NullReferenceError
        )
        points.append(Figure2Point(float(delay), tsv_exposed, memorder_exposed))
    return points


# ======================================================================
# Section 3.3 -- delay overlap and dynamic-instance censuses
# ======================================================================


@dataclass
class OverlapRow:
    app: str
    tsvd_overlap: float
    wafflebasic_overlap: float


def overlap_ratios(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[OverlapRow]:
    """Average delay-overlap ratio per app for Tsvd vs WaffleBasic.

    Each test gets two runs per tool (state persists across them, so
    the second run actually injects); the overlap ratio of the delayed
    run is averaged across tests.
    """
    rows: List[OverlapRow] = []
    for app in _apps(apps):
        per_tool: Dict[str, List[float]] = {"tsvd": [], "basic": []}
        for test in app.multithreaded_tests:
            base = run_baseline(test, seed=seed).virtual_time_ms
            limit = test_time_limit(base)
            for tool, tsv_mode in (("tsvd", True), ("basic", False)):
                decay = DecayState(config.decay_lambda)
                candidates = CandidateSet()
                last_overlap = 0.0
                for attempt in (1, 2):
                    run, _ = run_online_detection(
                        test,
                        config,
                        decay,
                        candidates,
                        seed=seed + attempt,
                        hook_seed=seed * 7919 + attempt,
                        tsv_mode=tsv_mode,
                        time_limit_ms=limit,
                    )
                    if run.delays_injected:
                        last_overlap = run.overlap_ratio
                per_tool[tool].append(last_overlap)
        rows.append(
            OverlapRow(
                app=app.display_name,
                tsvd_overlap=metrics.mean(per_tool["tsvd"]) if per_tool["tsvd"] else 0.0,
                wafflebasic_overlap=metrics.mean(per_tool["basic"]) if per_tool["basic"] else 0.0,
            )
        )
    return rows


@dataclass
class DynamicInstanceRow:
    app: str
    median_init_instances: float
    init_sites: int


def dynamic_instances(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Tuple[List[DynamicInstanceRow], float]:
    """Median dynamic instances of initialization sites (section 3.3:
    'the median number of dynamic instances for all object
    initialization operations is 2')."""
    rows: List[DynamicInstanceRow] = []
    all_counts: List[int] = []
    for app in _apps(apps):
        counts: List[int] = []
        for test in app.multithreaded_tests:
            _, trace = run_recording(test, config, seed=seed)
            counts.extend(trace.init_instance_counts())
        all_counts.extend(counts)
        rows.append(
            DynamicInstanceRow(
                app=app.display_name,
                median_init_instances=metrics.median(counts) if counts else 0.0,
                init_sites=len(counts),
            )
        )
    overall = metrics.median(all_counts) if all_counts else 0.0
    return rows, overall


# ======================================================================
# Table 4 -- bug detection results
# ======================================================================


@dataclass
class Table4Row:
    bug: KnownBug
    baseline_ms: float
    basic_runs: Optional[int]
    waffle_runs: Optional[int]
    basic_slowdown: Optional[float]
    waffle_slowdown: Optional[float]
    basic_attempt_runs: List[Optional[int]] = field(default_factory=list)
    waffle_attempt_runs: List[Optional[int]] = field(default_factory=list)


def _detect_attempts(
    tool_factory,
    bug: KnownBug,
    test: AppTestCase,
    attempts: int,
    budget: int,
    base_seed: int,
) -> Tuple[List[Optional[int]], List[float]]:
    runs: List[Optional[int]] = []
    times: List[float] = []
    for attempt in range(1, attempts + 1):
        config = DEFAULT_CONFIG.with_seed(base_seed + attempt)
        outcome: DetectionOutcome = tool_factory(config).detect(test, max_detection_runs=budget)
        matched = outcome.bug_found and bug.matches(outcome.reports[0])
        runs.append(outcome.runs_to_expose if matched else None)
        if matched:
            times.append(outcome.total_time_ms)
    return runs, times


def table4_detection(
    attempts: int = 15,
    budget: int = 50,
    bugs: Optional[Sequence[str]] = None,
    base_seed: int = 0,
) -> List[Table4Row]:
    """Per-bug detection runs and end-to-end slowdowns, Waffle vs
    WaffleBasic, with the paper's 15-attempt majority convention."""
    rows: List[Table4Row] = []
    selected = [b for b in all_bugs() if bugs is None or b.bug_id in bugs]
    for bug in selected:
        test = bug_workload(bug.bug_id)
        baseline = run_baseline(test, seed=base_seed).virtual_time_ms

        waffle_runs, waffle_times = _detect_attempts(
            Waffle, bug, test, attempts, budget, base_seed
        )
        basic_runs, basic_times = _detect_attempts(
            WaffleBasic, bug, test, attempts, budget, base_seed
        )

        rows.append(
            Table4Row(
                bug=bug,
                baseline_ms=baseline,
                basic_runs=metrics.majority_runs_to_expose(basic_runs),
                waffle_runs=metrics.majority_runs_to_expose(waffle_runs),
                basic_slowdown=(
                    metrics.median([t / baseline for t in basic_times]) if basic_times else None
                ),
                waffle_slowdown=(
                    metrics.median([t / baseline for t in waffle_times]) if waffle_times else None
                ),
                basic_attempt_runs=basic_runs,
                waffle_attempt_runs=waffle_runs,
            )
        )
    return rows


# ======================================================================
# Table 5 -- average overhead on all test inputs
# ======================================================================


@dataclass
class Table5Row:
    app: str
    baseline_ms: float
    basic_run1_pct: Optional[float]
    basic_run2_pct: Optional[float]
    waffle_run1_pct: Optional[float]
    waffle_run2_pct: Optional[float]
    basic_timeouts: int = 0
    waffle_timeouts: int = 0
    tests: int = 0

    @property
    def basic_timed_out(self) -> bool:
        return self.tests > 0 and self.basic_timeouts > self.tests / 2


def table5_overhead(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Table5Row]:
    """Average Run#1/Run#2 overheads per app for both tools.

    For WaffleBasic, Run#1 and Run#2 are its first two (online)
    detection runs with persisted state. For Waffle, Run#1 is the
    preparation run and Run#2 the first detection run (the paper's R#1
    and R#2 columns). Tests whose run exceeds the per-test timeout are
    counted as timeouts and excluded from the percentage averages.
    """
    rows: List[Table5Row] = []
    for app in _apps(apps):
        bases: List[float] = []
        basic_pcts: Dict[int, List[float]] = {1: [], 2: []}
        waffle_pcts: Dict[int, List[float]] = {1: [], 2: []}
        basic_timeouts = 0
        waffle_timeouts = 0
        for test in app.multithreaded_tests:
            base = run_baseline(test, seed=seed).virtual_time_ms
            bases.append(base)
            limit = test_time_limit(base)

            # WaffleBasic run 1 and run 2.
            decay = DecayState(config.decay_lambda)
            candidates = CandidateSet()
            timed_out = False
            for run_index in (1, 2):
                run, _ = run_online_detection(
                    test,
                    config,
                    decay,
                    candidates,
                    seed=seed + run_index,
                    hook_seed=seed * 7919 + run_index,
                    time_limit_ms=limit,
                )
                if run.timed_out:
                    timed_out = True
                else:
                    basic_pcts[run_index].append(
                        metrics.overhead_percent(run.virtual_time_ms, base)
                    )
            if timed_out:
                basic_timeouts += 1

            # Waffle preparation + first detection run.
            prep, trace = run_recording(test, config, seed=seed, time_limit_ms=limit)
            from ..core.analyzer import analyze_trace

            plan = analyze_trace(trace, config)
            if prep.timed_out:
                waffle_timeouts += 1
            else:
                waffle_pcts[1].append(metrics.overhead_percent(prep.virtual_time_ms, base))
                detect, _ = run_planned_detection(
                    test,
                    plan,
                    config,
                    DecayState(config.decay_lambda),
                    seed=seed + 1,
                    hook_seed=seed * 7919 + 1,
                    time_limit_ms=limit,
                )
                if detect.timed_out:
                    waffle_timeouts += 1
                else:
                    waffle_pcts[2].append(
                        metrics.overhead_percent(detect.virtual_time_ms, base)
                    )

        def avg(values: List[float]) -> Optional[float]:
            return metrics.mean(values) if values else None

        rows.append(
            Table5Row(
                app=app.display_name,
                baseline_ms=metrics.mean(bases) if bases else 0.0,
                basic_run1_pct=avg(basic_pcts[1]),
                basic_run2_pct=avg(basic_pcts[2]),
                waffle_run1_pct=avg(waffle_pcts[1]),
                waffle_run2_pct=avg(waffle_pcts[2]),
                basic_timeouts=basic_timeouts,
                waffle_timeouts=waffle_timeouts,
                tests=len(app.multithreaded_tests),
            )
        )
    return rows


# ======================================================================
# Table 6 -- cumulative delays injected
# ======================================================================


@dataclass
class Table6Row:
    app: str
    basic_delays: int
    basic_duration_ms: float
    waffle_delays: int
    waffle_duration_ms: float
    basic_timeouts: int = 0
    tests: int = 0

    @property
    def basic_timed_out(self) -> bool:
        return self.tests > 0 and self.basic_timeouts > self.tests / 2


def table6_delays(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> List[Table6Row]:
    """Cumulative number and duration of injected delays across all
    test inputs, one detection run per input (Basic: its second run,
    when persisted state makes injection meaningful; Waffle: its first
    detection run after the preparation run)."""
    rows: List[Table6Row] = []
    for app in _apps(apps):
        basic_delays = 0
        basic_duration = 0.0
        waffle_delays = 0
        waffle_duration = 0.0
        basic_timeouts = 0
        for test in app.multithreaded_tests:
            base = run_baseline(test, seed=seed).virtual_time_ms
            limit = test_time_limit(base)

            decay = DecayState(config.decay_lambda)
            candidates = CandidateSet()
            timed_out = False
            for run_index in (1, 2):
                run, _ = run_online_detection(
                    test,
                    config,
                    decay,
                    candidates,
                    seed=seed + run_index,
                    hook_seed=seed * 7919 + run_index,
                    time_limit_ms=limit,
                )
                if run.timed_out:
                    timed_out = True
                if run_index == 2:
                    basic_delays += run.delays_injected
                    basic_duration += run.total_delay_ms
            if timed_out:
                basic_timeouts += 1

            plan = analyze_test(test, config, seed=seed)
            detect, _ = run_planned_detection(
                test,
                plan,
                config,
                DecayState(config.decay_lambda),
                seed=seed + 1,
                hook_seed=seed * 7919 + 1,
                time_limit_ms=limit,
            )
            waffle_delays += detect.delays_injected
            waffle_duration += detect.total_delay_ms
        rows.append(
            Table6Row(
                app=app.display_name,
                basic_delays=basic_delays,
                basic_duration_ms=basic_duration,
                waffle_delays=waffle_delays,
                waffle_duration_ms=waffle_duration,
                basic_timeouts=basic_timeouts,
                tests=len(app.multithreaded_tests),
            )
        )
    return rows


# ======================================================================
# Table 7 -- design-point ablations
# ======================================================================


@dataclass
class Table7Row:
    design_point: str
    label: str
    bugs_missed: int
    slowdown_over_waffle: float


def table7_ablations(
    attempts: int = 5,
    budget: int = 15,
    base_seed: int = 0,
    apps_for_perf: Optional[Sequence[str]] = None,
) -> List[Table7Row]:
    """Bugs missed and detection-run slowdown for each single-design-
    point ablation, relative to full Waffle."""
    config = DEFAULT_CONFIG
    bugs = all_bugs()

    # Reference: bugs Waffle itself finds, and its detection-run times.
    waffle_found: Dict[str, bool] = {}
    for bug in bugs:
        test = bug_workload(bug.bug_id)
        runs, _ = _detect_attempts(Waffle, bug, test, attempts, budget, base_seed)
        waffle_found[bug.bug_id] = metrics.majority_runs_to_expose(runs) is not None

    waffle_perf = _ablation_perf(Waffle(config), config, apps_for_perf, base_seed)

    rows: List[Table7Row] = []
    for point, factory in ALL_ABLATIONS.items():
        missed = 0
        for bug in bugs:
            if not waffle_found[bug.bug_id]:
                continue
            test = bug_workload(bug.bug_id)
            runs, _ = _detect_attempts(
                lambda cfg, factory=factory: factory(cfg), bug, test, attempts, budget, base_seed
            )
            if metrics.majority_runs_to_expose(runs) is None:
                missed += 1
        ablated_perf = _ablation_perf(factory(config), config, apps_for_perf, base_seed)
        rows.append(
            Table7Row(
                design_point=point,
                label=DESIGN_POINT_LABELS[point],
                bugs_missed=missed,
                slowdown_over_waffle=ablated_perf / waffle_perf if waffle_perf > 0 else 0.0,
            )
        )
    return rows


def _ablation_perf(
    driver,
    config: WaffleConfig,
    apps: Optional[Sequence[str]],
    seed: int,
) -> float:
    """Average detection-run virtual time across all test inputs for a
    driver, capped at one detection run per test."""
    total = 0.0
    count = 0
    # Re-seed without disturbing the driver's (possibly ablated) flags.
    driver.config = driver.config.with_seed(seed)
    for app in _apps(apps):
        for test in app.multithreaded_tests:
            outcome = driver.detect(test, max_detection_runs=1)
            detect_runs = [r for r in outcome.runs if r.kind == "detect"]
            if detect_runs:
                total += detect_runs[-1].virtual_time_ms
                count += 1
    return total / count if count else 0.0


# ======================================================================
# Section 6.2 -- delay-free stress control
# ======================================================================


@dataclass
class StressRow:
    bug_id: str
    runs: int
    spontaneous_manifestations: int


def stress_control(
    runs: int = 50,
    bugs: Optional[Sequence[str]] = None,
    base_seed: int = 0,
) -> List[StressRow]:
    """Re-run each bug-triggering input ``runs`` times without delays;
    the paper's control says no bug ever manifests."""
    rows: List[StressRow] = []
    for bug in all_bugs():
        if bugs is not None and bug.bug_id not in bugs:
            continue
        test = bug_workload(bug.bug_id)
        runner = StressRunner(DEFAULT_CONFIG.with_seed(base_seed))
        outcome = runner.detect(test, max_detection_runs=runs)
        rows.append(
            StressRow(
                bug_id=bug.bug_id,
                runs=len(outcome.runs),
                spontaneous_manifestations=runner.spontaneous_manifestations(outcome),
            )
        )
    return rows


# ======================================================================
# Extension -- the full Table 1 design space, quantified
# ======================================================================


@dataclass
class RelatedToolsRow:
    """Runs-to-expose and end-to-end slowdown for one bug x tool."""

    bug_id: str
    app: str
    runs: Dict[str, Optional[int]] = field(default_factory=dict)
    slowdowns: Dict[str, Optional[float]] = field(default_factory=dict)


def related_tools_comparison(
    bugs: Optional[Sequence[str]] = None,
    budget: int = 60,
    base_seed: int = 1,
) -> List[RelatedToolsRow]:
    """Extension experiment: quantify Table 1's qualitative matrix.

    Runs simplified models of RaceFuzzer, CTrigger, RaceMob and
    DataCollider (see :mod:`repro.baselines.related`) next to Waffle on
    the Table 4 bug suite. The paper's section 7 claim -- prior
    validation-style tools "naturally require many more runs than
    Waffle" -- becomes measurable: the one-candidate-per-run tools sweep
    |S| candidates on the dense apps, and the sampling tools miss the
    long-gap bugs outright.
    """
    from ..baselines.related import RELATED_TOOLS
    from ..baselines.stress import baseline_time_ms
    from ..core.detector import Waffle as _Waffle

    tool_factories = dict(RELATED_TOOLS)
    tool_factories["waffle"] = _Waffle

    rows: List[RelatedToolsRow] = []
    for bug in all_bugs():
        if bugs is not None and bug.bug_id not in bugs:
            continue
        test = bug_workload(bug.bug_id)
        baseline = baseline_time_ms(test, seed=base_seed)
        row = RelatedToolsRow(bug_id=bug.bug_id, app=bug.app)
        for name, factory in tool_factories.items():
            config = DEFAULT_CONFIG.with_seed(base_seed)
            outcome = factory(config).detect(test, max_detection_runs=budget)
            matched = outcome.bug_found and bug.matches(outcome.reports[0])
            row.runs[name] = outcome.runs_to_expose if matched else None
            row.slowdowns[name] = (
                outcome.total_time_ms / baseline if matched and baseline > 0 else None
            )
        rows.append(row)
    return rows


# ======================================================================
# Figure 5 -- the delay-interference window
# ======================================================================


@dataclass
class Figure5Point:
    """One sweep point: when the interfering delay starts, and whether
    the target bug still manifests."""

    interferer_at_ms: float
    interferer_delay_overlaps_window: bool
    bug_exposed: bool


class _TwoSiteDelays(InstrumentationHook):
    """Fixed delays at the target use site and the interfering site."""

    def __init__(self, target_delay_ms: float, interferer_delay_ms: float):
        self.target_delay_ms = target_delay_ms
        self.interferer_delay_ms = interferer_delay_ms

    def before_access(self, pending) -> float:
        if pending.location.site == "fig5.use":
            return self.target_delay_ms
        if pending.location.site == "fig5.interferer":
            return self.interferer_delay_ms
        return 0.0


def figure5_interference_window(
    interferer_times_ms: Sequence[float] = (0.0, 1.0, 2.0, 6.0, 7.0, 8.0),
    target_delay_ms: float = 20.0,
    interferer_delay_ms: float = 20.0,
    seed: int = 0,
) -> List[Figure5Point]:
    """Quantify Figure 5: an equal-length delay at l* on the disposer's
    thread cancels the reordering delay at l1 *only when it runs late
    enough to still be pending when the delayed use lands* -- an early
    l* delay is absorbed by the thread's slack before the disposal and
    interferes with nothing.

    Scenario (delay-free timeline): thread 1 uses the object at t=5;
    thread 2 executes l* at a swept time, waits for a timer gate at
    t=9.5, then disposes at t~10. Both sites receive the same 20 ms
    delay (the WaffleBasic fixed-length setting that makes Figure 4's
    cancellations deterministic). The delayed use lands at ~25 ms; the
    disposal lands at max(10, t* + 20) + 0.5 -- so for t* late enough
    that the two delay windows still overlap at the use's landing, the
    disposal is pushed past the use and the bug is hidden.
    """
    points: List[Figure5Point] = []
    for interferer_at in interferer_times_ms:
        sim = Simulation(
            seed=seed, hook=_TwoSiteDelays(target_delay_ms, interferer_delay_ms)
        )
        ref = sim.ref("fig5_obj")
        scratch = sim.ref("fig5_scratch")
        gate = sim.event("fig5.gate")

        def user():
            yield from sim.sleep(5.0)
            yield from sim.use(ref, member="Touch", loc="fig5.use")

        def disposer(at=interferer_at):
            yield from sim.sleep(at)
            yield from sim.use(scratch, member="Prep", loc="fig5.interferer")
            yield from gate.wait()  # slack absorbs early delays
            yield from sim.sleep(0.5)
            yield from sim.dispose(ref, loc="fig5.dispose")

        def timer():
            yield from sim.sleep(9.5)
            gate.set()

        def root():
            yield from sim.assign(ref, sim.new("fig5.Obj"), loc="fig5.init")
            yield from sim.assign(scratch, sim.new("fig5.Scratch"), loc="fig5.scratch_init")
            threads = [
                sim.fork(user(), name="fig5-user"),
                sim.fork(disposer(), name="fig5-disposer"),
                sim.fork(timer(), name="fig5-timer"),
            ]
            yield from sim.join_all(threads)

        result = sim.run(root())
        exposed = result.crashed and isinstance(result.first_failure(), NullReferenceError)
        use_lands_at = 5.0 + target_delay_ms
        overlaps = interferer_at + interferer_delay_ms + 0.5 > use_lands_at
        points.append(Figure5Point(interferer_at, overlaps, exposed))
    return points
