"""One driver per paper table/figure (DESIGN.md section 4).

Every function returns plain dataclasses so the renderers in
:mod:`repro.harness.tables`, the pytest benchmarks and the CLI can share
results. Paper-reported values are carried alongside measured ones so
EXPERIMENTS.md tables can be regenerated mechanically.

Each driver decomposes into independent *cells* -- one (app, test,
seed) or (bug, tool, seed) unit implemented as a module-level worker
function -- mapped through :func:`repro.harness.parallel.map_units`.
Cells take only picklable arguments (names, configs, seeds, a cache
directory) so ``jobs > 1`` fans them out over a process pool; results
merge in submission order, so parallel runs are bit-identical to serial
ones. ``cache_dir`` enables the content-addressed trace/plan cache
(:mod:`repro.harness.cache`): preparation traces are recorded once and
their plans reused across tables instead of re-executed per driver.

When a campaign supervisor is active (``--resume``/``--retries``/
``--cell-timeout`` or ``WAFFLE_CHAOS``; see
:mod:`repro.harness.supervisor`), ``map_units`` routes every cell
through its fault boundary: hung or crashed cells are retried with
backoff, deterministic failures are quarantined (their row degrades to
``None`` instead of aborting the table), and finished cells are
journaled for checkpoint-resume. Because cells are deterministic,
supervised, resumed and chaos-surviving campaigns all produce
bit-identical tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps import all_apps, all_bugs, bug_workload, get_app, get_bug
from ..apps.base import Application, AppTestCase, KnownBug
from ..baselines import ALL_ABLATIONS, DESIGN_POINT_LABELS, StressRunner, WaffleBasic
from ..core.config import DEFAULT_CONFIG, WaffleConfig
from ..core.delay_policy import DecayState
from ..core.detector import DetectionOutcome, Waffle
from ..sim.api import Simulation
from ..sim.errors import NullReferenceError
from ..sim.instrument import InstrumentationHook
from ..obs import eventbus
from . import metrics
from .cache import PlanCache, config_hash, open_cache, run_to_dict
from .parallel import map_units
from .runner import (
    SingleRun,
    analyze_test,
    baseline_run,
    online_pair,
    prepare_test,
    run_planned_detection,
    test_time_limit,
)


def _apps(subset: Optional[Sequence[str]] = None) -> List[Application]:
    registry = all_apps()
    if subset is None:
        return list(registry.values())
    return [registry[name] for name in subset]


def _app_test_units(apps: Optional[Sequence[str]]) -> List[Tuple[str, str]]:
    """Flatten the selected apps into (app_name, test_name) cells."""
    units: List[Tuple[str, str]] = []
    for app in _apps(apps):
        for test in app.multithreaded_tests:
            units.append((app.name, test.name))
    return units


def _test_id(app_name: str, test_name: str) -> str:
    return "%s:%s" % (app_name, test_name)


def _merge_per_app(
    apps: Optional[Sequence[str]],
    units: Sequence[Tuple[str, str]],
    results: Sequence,
) -> Dict[str, List]:
    """Group per-test cell results back into per-app lists, preserving
    the per-app test order the serial loops used."""
    grouped: Dict[str, List] = {app.name: [] for app in _apps(apps)}
    for (app_name, _), result in zip(units, results):
        grouped[app_name].append(result)
    return grouped


def _planned_run_cached(
    test: AppTestCase,
    plan,
    config: WaffleConfig,
    seed: int,
    hook_seed: int,
    time_limit_ms: Optional[float],
    plan_limit: Optional[float],
    cache: Optional[PlanCache],
    test_id: str,
) -> SingleRun:
    """One planned detection run, memoized.

    The plan is itself a deterministic function of (test, config, seed,
    plan_limit), so the cache key covers the run without serializing the
    plan. ``plan_limit`` records the time limit the *preparation* run
    used (Tables 5 and 6 differ here).
    """
    key = None
    if cache is not None:
        key = {
            "test": test_id,
            "config": config_hash(config),
            "seed": seed,
            "hook_seed": hook_seed,
            "limit": time_limit_ms,
            "plan_limit": plan_limit,
        }
        record = cache.get("planned", key)
        if record is not None:
            return SingleRun(**record)
    run, _ = run_planned_detection(
        test,
        plan,
        config,
        DecayState(config.decay_lambda),
        seed=seed,
        hook_seed=hook_seed,
        time_limit_ms=time_limit_ms,
    )
    if cache is not None and key is not None:
        cache.put("planned", key, run_to_dict(run))
    return run


# ======================================================================
# Table 2 -- instrumentation and injection site densities
# ======================================================================


@dataclass
class Table2Row:
    app: str
    tsv_instr_sites: float
    mo_instr_sites: float
    tsv_injection_sites: float
    mo_injection_sites: float


def _table2_cell(
    app_name: str,
    test_name: str,
    config: WaffleConfig,
    seed: int,
    cache_dir: Optional[str],
) -> Tuple[int, int, int, int]:
    """Site censuses of one test: (mo_instr, tsv_instr, mo_inject, tsv_inject)."""
    test = get_app(app_name).test(test_name)
    prep = prepare_test(
        test,
        config,
        seed=seed,
        cache=open_cache(cache_dir),
        test_id=_test_id(app_name, test_name),
    )
    return (
        prep.mo_sites,
        prep.tsv_sites,
        len(prep.plan.candidates.delay_locations),
        prep.tsv_injection_sites,
    )


def table2_sites(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Table2Row]:
    """Average unique static instrumentation and injection sites per
    test input, for the TSV (Tsvd) and MemOrder (Waffle) surfaces."""
    units = _app_test_units(apps)
    cells = map_units(
        _table2_cell,
        [(app, test, config, seed, cache_dir) for app, test in units],
        jobs,
    )
    grouped = _merge_per_app(apps, units, cells)
    rows: List[Table2Row] = []
    for app in _apps(apps):
        per_test = grouped[app.name]
        count = max(1, len(app.multithreaded_tests))
        rows.append(
            Table2Row(
                app=app.display_name,
                tsv_instr_sites=sum(c[1] for c in per_test) / count,
                mo_instr_sites=sum(c[0] for c in per_test) / count,
                tsv_injection_sites=sum(c[3] for c in per_test) / count,
                mo_injection_sites=sum(c[2] for c in per_test) / count,
            )
        )
    return rows


# ======================================================================
# Figure 2 -- timing conditions for TSVs vs MemOrder bugs
# ======================================================================


@dataclass
class Figure2Point:
    delay_ms: float
    tsv_exposed: bool
    memorder_exposed: bool


class _FixedDelayAt(InstrumentationHook):
    """Inject a fixed delay at exactly one static site (microbench aid)."""

    def __init__(self, site: str, delay_ms: float):
        self.site = site
        self.delay_ms = delay_ms

    def before_access(self, pending) -> float:
        return self.delay_ms if pending.location.site == self.site else 0.0


def _figure2_tsv_scenario(sim: Simulation) -> object:
    """API call 1 (thread 1) ends well before API call 2 (thread 2):
    only a delay within (T3-T2, T4-T1) makes the windows overlap."""
    table = sim.unsafe_dict("fig2.Dict")

    def caller_one():
        yield from sim.unsafe_call(table, "add", "k", 1, loc="fig2.call1", duration=3.0)

    def caller_two():
        yield from sim.sleep(10.0)
        yield from sim.unsafe_call(table, "add", "k", 2, loc="fig2.call2", duration=3.0)

    def root():
        a = sim.fork(caller_one(), name="fig2-one")
        b = sim.fork(caller_two(), name="fig2-two")
        yield from sim.join(a)
        yield from sim.join(b)

    return root()


def _figure2_memorder_scenario(sim: Simulation) -> object:
    """Use at t=0 (thread 2), dispose at t=10 (thread 1): only a delay
    longer than the whole gap (delay > T4-T1) exposes the bug."""
    ref = sim.ref("fig2_obj")

    def user():
        yield from sim.use(ref, member="Touch", loc="fig2.use")

    def root():
        yield from sim.assign(ref, sim.new("fig2.Obj"), loc="fig2.init")
        worker = sim.fork(user(), name="fig2-user")
        yield from sim.sleep(10.0)
        yield from sim.dispose(ref, loc="fig2.dispose")
        yield from sim.join(worker)

    return root()


def _figure2_cell(delay: float, seed: int) -> Figure2Point:
    sim = Simulation(seed=seed, hook=_FixedDelayAt("fig2.call1", float(delay)))
    result = sim.run(_figure2_tsv_scenario(sim))
    tsv_exposed = bool(result.tsv_occurrences)

    sim = Simulation(seed=seed, hook=_FixedDelayAt("fig2.use", float(delay)))
    result = sim.run(_figure2_memorder_scenario(sim))
    memorder_exposed = result.crashed and isinstance(
        result.first_failure(), NullReferenceError
    )
    return Figure2Point(float(delay), tsv_exposed, memorder_exposed)


def figure2_timing_conditions(
    delays_ms: Sequence[float] = (0, 2, 4, 6, 8, 9, 11, 12, 14, 16, 20, 30),
    seed: int = 0,
    jobs: int = 1,
) -> List[Figure2Point]:
    return map_units(_figure2_cell, [(delay, seed) for delay in delays_ms], jobs)


# ======================================================================
# Section 3.3 -- delay overlap and dynamic-instance censuses
# ======================================================================


@dataclass
class OverlapRow:
    app: str
    tsvd_overlap: float
    wafflebasic_overlap: float


def _overlap_cell(
    app_name: str,
    test_name: str,
    config: WaffleConfig,
    seed: int,
    cache_dir: Optional[str],
) -> Tuple[float, float]:
    """(tsvd_overlap, wafflebasic_overlap) of one test's delayed run."""
    test = get_app(app_name).test(test_name)
    cache = open_cache(cache_dir)
    test_id = _test_id(app_name, test_name)
    base = baseline_run(test, seed=seed, cache=cache, test_id=test_id).virtual_time_ms
    limit = test_time_limit(base)
    overlaps: Dict[bool, float] = {}
    for tsv_mode in (True, False):
        last_overlap = 0.0
        for run in online_pair(
            test,
            config,
            seed=seed,
            time_limit_ms=limit,
            tsv_mode=tsv_mode,
            cache=cache,
            test_id=test_id,
        ):
            if run.delays_injected:
                last_overlap = run.overlap_ratio
        overlaps[tsv_mode] = last_overlap
    return overlaps[True], overlaps[False]


def overlap_ratios(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[OverlapRow]:
    """Average delay-overlap ratio per app for Tsvd vs WaffleBasic.

    Each test gets two runs per tool (state persists across them, so
    the second run actually injects); the overlap ratio of the delayed
    run is averaged across tests.
    """
    units = _app_test_units(apps)
    cells = map_units(
        _overlap_cell,
        [(app, test, config, seed, cache_dir) for app, test in units],
        jobs,
    )
    grouped = _merge_per_app(apps, units, cells)
    rows: List[OverlapRow] = []
    for app in _apps(apps):
        per_test = grouped[app.name]
        tsvd = [c[0] for c in per_test]
        basic = [c[1] for c in per_test]
        rows.append(
            OverlapRow(
                app=app.display_name,
                tsvd_overlap=metrics.mean(tsvd, context="overlap/tsvd: %s" % app.name) if tsvd else 0.0,
                wafflebasic_overlap=(
                    metrics.mean(basic, context="overlap/wafflebasic: %s" % app.name)
                    if basic
                    else 0.0
                ),
            )
        )
    return rows


@dataclass
class DynamicInstanceRow:
    app: str
    median_init_instances: float
    init_sites: int


def _dynamic_cell(
    app_name: str,
    test_name: str,
    config: WaffleConfig,
    seed: int,
    cache_dir: Optional[str],
) -> List[int]:
    test = get_app(app_name).test(test_name)
    prep = prepare_test(
        test,
        config,
        seed=seed,
        cache=open_cache(cache_dir),
        test_id=_test_id(app_name, test_name),
    )
    return prep.init_instance_counts


def dynamic_instances(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Tuple[List[DynamicInstanceRow], float]:
    """Median dynamic instances of initialization sites (section 3.3:
    'the median number of dynamic instances for all object
    initialization operations is 2')."""
    units = _app_test_units(apps)
    cells = map_units(
        _dynamic_cell,
        [(app, test, config, seed, cache_dir) for app, test in units],
        jobs,
    )
    grouped = _merge_per_app(apps, units, cells)
    rows: List[DynamicInstanceRow] = []
    all_counts: List[int] = []
    for app in _apps(apps):
        counts: List[int] = []
        for per_test in grouped[app.name]:
            counts.extend(per_test)
        all_counts.extend(counts)
        rows.append(
            DynamicInstanceRow(
                app=app.display_name,
                median_init_instances=(
                    metrics.median(counts, context="dynamic: %s" % app.name) if counts else 0.0
                ),
                init_sites=len(counts),
            )
        )
    overall = metrics.median(all_counts) if all_counts else 0.0
    return rows, overall


# ======================================================================
# Table 4 -- bug detection results
# ======================================================================


@dataclass
class Table4Row:
    bug: KnownBug
    baseline_ms: float
    basic_runs: Optional[int]
    waffle_runs: Optional[int]
    basic_slowdown: Optional[float]
    waffle_slowdown: Optional[float]
    basic_attempt_runs: List[Optional[int]] = field(default_factory=list)
    waffle_attempt_runs: List[Optional[int]] = field(default_factory=list)


def _detect_attempts(
    tool_factory,
    bug: KnownBug,
    test: AppTestCase,
    attempts: int,
    budget: int,
    base_seed: int,
    cache: Optional[PlanCache] = None,
    tool_label: Optional[str] = None,
    test_id: Optional[str] = None,
) -> Tuple[List[Optional[int]], List[float]]:
    runs: List[Optional[int]] = []
    times: List[float] = []
    for attempt in range(1, attempts + 1):
        config = DEFAULT_CONFIG.with_seed(base_seed + attempt)
        key = None
        entry = None
        if cache is not None and tool_label is not None:
            key = {
                "tool": tool_label,
                "bug": bug.bug_id,
                "test": test_id if test_id is not None else test.name,
                "budget": budget,
                "config": config_hash(config, include_seed=True),
            }
            entry = cache.get("detect", key)
        if entry is None:
            outcome: DetectionOutcome = tool_factory(config).detect(
                test, max_detection_runs=budget
            )
            matched = outcome.bug_found and bug.matches(outcome.reports[0])
            entry = {
                "matched": matched,
                "runs": outcome.runs_to_expose if matched else None,
                "time_ms": outcome.total_time_ms,
                # Deterministic funnel census, carried in the cache
                # entry so a warm-cache campaign emits the same
                # detection event as a cold one.
                "session_runs": len(outcome.runs),
                "delays": outcome.total_delays,
                "crashes": sum(1 for r in outcome.runs if r.crashed),
                "pairs": outcome.plan.stats.candidate_pairs if outcome.plan else 0,
            }
            if cache is not None and key is not None:
                cache.put("detect", key, entry)
        bus = eventbus.bus()
        if bus is not None:
            bus.emit(
                "detection",
                tool=tool_label or getattr(tool_factory, "__name__", "tool"),
                bug=bug.bug_id,
                test=test_id if test_id is not None else test.name,
                attempt=attempt,
                matched=bool(entry["matched"]),
                runs=entry["runs"],
                time_ms=entry["time_ms"],
                session_runs=entry.get("session_runs", 0),
                delays=entry.get("delays", 0),
                crashes=entry.get("crashes", 0),
                pairs=entry.get("pairs", 0),
            )
            bus.maybe_flush()
        runs.append(entry["runs"] if entry["matched"] else None)
        if entry["matched"]:
            times.append(entry["time_ms"])
    return runs, times


def _table4_cell(
    bug_id: str,
    attempts: int,
    budget: int,
    base_seed: int,
    cache_dir: Optional[str],
) -> Table4Row:
    bug = get_bug(bug_id)
    test = bug_workload(bug_id)
    cache = open_cache(cache_dir)
    test_id = _test_id(bug.app, bug.test_name)
    baseline = baseline_run(test, seed=base_seed, cache=cache, test_id=test_id).virtual_time_ms

    waffle_runs, waffle_times = _detect_attempts(
        Waffle, bug, test, attempts, budget, base_seed, cache, "waffle", test_id
    )
    basic_runs, basic_times = _detect_attempts(
        WaffleBasic, bug, test, attempts, budget, base_seed, cache, "wafflebasic", test_id
    )

    return Table4Row(
        bug=bug,
        baseline_ms=baseline,
        basic_runs=metrics.majority_runs_to_expose(basic_runs),
        waffle_runs=metrics.majority_runs_to_expose(waffle_runs),
        basic_slowdown=(
            metrics.median(
                [t / baseline for t in basic_times],
                context="table4/wafflebasic: %s" % bug_id,
            )
            if basic_times
            else None
        ),
        waffle_slowdown=(
            metrics.median(
                [t / baseline for t in waffle_times],
                context="table4/waffle: %s" % bug_id,
            )
            if waffle_times
            else None
        ),
        basic_attempt_runs=basic_runs,
        waffle_attempt_runs=waffle_runs,
    )


def table4_detection(
    attempts: int = 15,
    budget: int = 50,
    bugs: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Table4Row]:
    """Per-bug detection runs and end-to-end slowdowns, Waffle vs
    WaffleBasic, with the paper's 15-attempt majority convention."""
    selected = [b for b in all_bugs() if bugs is None or b.bug_id in bugs]
    return map_units(
        _table4_cell,
        [(bug.bug_id, attempts, budget, base_seed, cache_dir) for bug in selected],
        jobs,
    )


# ======================================================================
# Table 5 -- average overhead on all test inputs
# ======================================================================


@dataclass
class Table5Row:
    app: str
    baseline_ms: float
    basic_run1_pct: Optional[float]
    basic_run2_pct: Optional[float]
    waffle_run1_pct: Optional[float]
    waffle_run2_pct: Optional[float]
    basic_timeouts: int = 0
    waffle_timeouts: int = 0
    tests: int = 0

    @property
    def basic_timed_out(self) -> bool:
        return self.tests > 0 and self.basic_timeouts > self.tests / 2


@dataclass
class _Table5Cell:
    """Per-test measurements merged into Table5Row averages."""

    base: float
    basic_pcts: Dict[int, Optional[float]]
    basic_timed_out: bool
    waffle_pcts: Dict[int, Optional[float]]
    waffle_timeouts: int


def _table5_cell(
    app_name: str,
    test_name: str,
    config: WaffleConfig,
    seed: int,
    cache_dir: Optional[str],
) -> _Table5Cell:
    test = get_app(app_name).test(test_name)
    cache = open_cache(cache_dir)
    test_id = _test_id(app_name, test_name)
    base = baseline_run(test, seed=seed, cache=cache, test_id=test_id).virtual_time_ms
    limit = test_time_limit(base)

    # WaffleBasic run 1 and run 2.
    basic_pcts: Dict[int, Optional[float]] = {1: None, 2: None}
    timed_out = False
    for run_index, run in enumerate(
        online_pair(test, config, seed=seed, time_limit_ms=limit, cache=cache, test_id=test_id),
        start=1,
    ):
        if run.timed_out:
            timed_out = True
        else:
            basic_pcts[run_index] = metrics.overhead_percent(
                run.virtual_time_ms,
                base,
                context="table5/wafflebasic run %d: %s" % (run_index, test_id),
            )

    # Waffle preparation + first detection run.
    waffle_pcts: Dict[int, Optional[float]] = {1: None, 2: None}
    waffle_timeouts = 0
    prep = prepare_test(
        test, config, seed=seed, time_limit_ms=limit, cache=cache, test_id=test_id
    )
    if prep.run.timed_out:
        waffle_timeouts += 1
    else:
        waffle_pcts[1] = metrics.overhead_percent(
            prep.run.virtual_time_ms,
            base,
            context="table5/waffle prep: %s" % test_id,
        )
        detect = _planned_run_cached(
            test,
            prep.plan,
            config,
            seed=seed + 1,
            hook_seed=seed * 7919 + 1,
            time_limit_ms=limit,
            plan_limit=limit,
            cache=cache,
            test_id=test_id,
        )
        if detect.timed_out:
            waffle_timeouts += 1
        else:
            waffle_pcts[2] = metrics.overhead_percent(
                detect.virtual_time_ms,
                base,
                context="table5/waffle detect: %s" % test_id,
            )

    return _Table5Cell(
        base=base,
        basic_pcts=basic_pcts,
        basic_timed_out=timed_out,
        waffle_pcts=waffle_pcts,
        waffle_timeouts=waffle_timeouts,
    )


def table5_overhead(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Table5Row]:
    """Average Run#1/Run#2 overheads per app for both tools.

    For WaffleBasic, Run#1 and Run#2 are its first two (online)
    detection runs with persisted state. For Waffle, Run#1 is the
    preparation run and Run#2 the first detection run (the paper's R#1
    and R#2 columns). Tests whose run exceeds the per-test timeout are
    counted as timeouts and excluded from the percentage averages.
    """
    units = _app_test_units(apps)
    cells = map_units(
        _table5_cell,
        [(app, test, config, seed, cache_dir) for app, test in units],
        jobs,
    )
    grouped = _merge_per_app(apps, units, cells)
    rows: List[Table5Row] = []
    for app in _apps(apps):
        per_test: List[_Table5Cell] = grouped[app.name]
        bases = [c.base for c in per_test]
        basic_pcts = {
            index: [c.basic_pcts[index] for c in per_test if c.basic_pcts[index] is not None]
            for index in (1, 2)
        }
        waffle_pcts = {
            index: [c.waffle_pcts[index] for c in per_test if c.waffle_pcts[index] is not None]
            for index in (1, 2)
        }

        def avg(values: List[float]) -> Optional[float]:
            return metrics.mean(values, context="table5: %s" % app.name) if values else None

        rows.append(
            Table5Row(
                app=app.display_name,
                baseline_ms=(
                    metrics.mean(bases, context="table5/baseline: %s" % app.name)
                    if bases
                    else 0.0
                ),
                basic_run1_pct=avg(basic_pcts[1]),
                basic_run2_pct=avg(basic_pcts[2]),
                waffle_run1_pct=avg(waffle_pcts[1]),
                waffle_run2_pct=avg(waffle_pcts[2]),
                basic_timeouts=sum(1 for c in per_test if c.basic_timed_out),
                waffle_timeouts=sum(c.waffle_timeouts for c in per_test),
                tests=len(app.multithreaded_tests),
            )
        )
    return rows


# ======================================================================
# Table 6 -- cumulative delays injected
# ======================================================================


@dataclass
class Table6Row:
    app: str
    basic_delays: int
    basic_duration_ms: float
    waffle_delays: int
    waffle_duration_ms: float
    basic_timeouts: int = 0
    tests: int = 0

    @property
    def basic_timed_out(self) -> bool:
        return self.tests > 0 and self.basic_timeouts > self.tests / 2


def _table6_cell(
    app_name: str,
    test_name: str,
    config: WaffleConfig,
    seed: int,
    cache_dir: Optional[str],
) -> Tuple[int, float, int, float, bool]:
    """(basic_delays, basic_ms, waffle_delays, waffle_ms, basic_timed_out)."""
    test = get_app(app_name).test(test_name)
    cache = open_cache(cache_dir)
    test_id = _test_id(app_name, test_name)
    base = baseline_run(test, seed=seed, cache=cache, test_id=test_id).virtual_time_ms
    limit = test_time_limit(base)

    basic_delays = 0
    basic_duration = 0.0
    timed_out = False
    for run_index, run in enumerate(
        online_pair(test, config, seed=seed, time_limit_ms=limit, cache=cache, test_id=test_id),
        start=1,
    ):
        if run.timed_out:
            timed_out = True
        if run_index == 2:
            basic_delays += run.delays_injected
            basic_duration += run.total_delay_ms

    plan = analyze_test(test, config, seed=seed, cache=cache, test_id=test_id)
    detect = _planned_run_cached(
        test,
        plan,
        config,
        seed=seed + 1,
        hook_seed=seed * 7919 + 1,
        time_limit_ms=limit,
        plan_limit=None,
        cache=cache,
        test_id=test_id,
    )
    return basic_delays, basic_duration, detect.delays_injected, detect.total_delay_ms, timed_out


def table6_delays(
    config: WaffleConfig = DEFAULT_CONFIG,
    apps: Optional[Sequence[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Table6Row]:
    """Cumulative number and duration of injected delays across all
    test inputs, one detection run per input (Basic: its second run,
    when persisted state makes injection meaningful; Waffle: its first
    detection run after the preparation run)."""
    units = _app_test_units(apps)
    cells = map_units(
        _table6_cell,
        [(app, test, config, seed, cache_dir) for app, test in units],
        jobs,
    )
    grouped = _merge_per_app(apps, units, cells)
    rows: List[Table6Row] = []
    for app in _apps(apps):
        per_test = grouped[app.name]
        rows.append(
            Table6Row(
                app=app.display_name,
                basic_delays=sum(c[0] for c in per_test),
                basic_duration_ms=sum(c[1] for c in per_test),
                waffle_delays=sum(c[2] for c in per_test),
                waffle_duration_ms=sum(c[3] for c in per_test),
                basic_timeouts=sum(1 for c in per_test if c[4]),
                tests=len(app.multithreaded_tests),
            )
        )
    return rows


# ======================================================================
# Table 7 -- design-point ablations
# ======================================================================


@dataclass
class Table7Row:
    design_point: str
    label: str
    bugs_missed: int
    slowdown_over_waffle: float


def _ablation_factory(design_point: Optional[str]):
    """Tool factory + cache label for an ablation (None = full Waffle)."""
    if design_point is None:
        return Waffle, "waffle"
    factory = ALL_ABLATIONS[design_point]
    return (lambda cfg, factory=factory: factory(cfg)), "ablation:" + design_point


def _table7_found_cell(
    design_point: Optional[str],
    bug_id: str,
    attempts: int,
    budget: int,
    base_seed: int,
    cache_dir: Optional[str],
) -> bool:
    """Does this (possibly ablated) tool find the bug by majority?"""
    factory, label = _ablation_factory(design_point)
    bug = get_bug(bug_id)
    test = bug_workload(bug_id)
    runs, _ = _detect_attempts(
        factory,
        bug,
        test,
        attempts,
        budget,
        base_seed,
        open_cache(cache_dir),
        label,
        _test_id(bug.app, bug.test_name),
    )
    return metrics.majority_runs_to_expose(runs) is not None


def _table7_perf_cell(
    design_point: Optional[str],
    app_name: str,
    base_seed: int,
    cache_dir: Optional[str],
) -> Tuple[float, int]:
    """(total detection-run virtual time, test count) for one app."""
    factory, label = _ablation_factory(design_point)
    driver = factory(DEFAULT_CONFIG)
    # Re-seed without disturbing the driver's (possibly ablated) flags.
    driver.config = driver.config.with_seed(base_seed)
    cache = open_cache(cache_dir)
    total = 0.0
    count = 0
    for test in get_app(app_name).multithreaded_tests:
        key = None
        entry = None
        if cache is not None:
            key = {
                "tool": label,
                "test": _test_id(app_name, test.name),
                "config": config_hash(driver.config, include_seed=True),
            }
            entry = cache.get("perf", key)
        if entry is None:
            outcome = driver.detect(test, max_detection_runs=1)
            detect_runs = [r for r in outcome.runs if r.kind == "detect"]
            entry = {"vt": detect_runs[-1].virtual_time_ms if detect_runs else None}
            if cache is not None and key is not None:
                cache.put("perf", key, entry)
        if entry["vt"] is not None:
            total += entry["vt"]
            count += 1
    return total, count


def _ablation_perf(
    design_point: Optional[str],
    apps: Optional[Sequence[str]],
    base_seed: int,
    jobs: int,
    cache_dir: Optional[str],
) -> float:
    """Average detection-run virtual time across all test inputs for a
    driver, capped at one detection run per test."""
    cells = map_units(
        _table7_perf_cell,
        [(design_point, app.name, base_seed, cache_dir) for app in _apps(apps)],
        jobs,
    )
    total = sum(c[0] for c in cells)
    count = sum(c[1] for c in cells)
    return total / count if count else 0.0


def table7_ablations(
    attempts: int = 5,
    budget: int = 15,
    base_seed: int = 0,
    apps_for_perf: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Table7Row]:
    """Bugs missed and detection-run slowdown for each single-design-
    point ablation, relative to full Waffle."""
    bugs = all_bugs()

    # Reference: bugs Waffle itself finds, and its detection-run times.
    found_flags = map_units(
        _table7_found_cell,
        [(None, bug.bug_id, attempts, budget, base_seed, cache_dir) for bug in bugs],
        jobs,
    )
    waffle_found = {bug.bug_id: flag for bug, flag in zip(bugs, found_flags)}
    waffle_perf = _ablation_perf(None, apps_for_perf, base_seed, jobs, cache_dir)

    rows: List[Table7Row] = []
    for point in ALL_ABLATIONS:
        found_bugs = [bug for bug in bugs if waffle_found[bug.bug_id]]
        flags = map_units(
            _table7_found_cell,
            [(point, bug.bug_id, attempts, budget, base_seed, cache_dir) for bug in found_bugs],
            jobs,
        )
        missed = sum(1 for flag in flags if not flag)
        ablated_perf = _ablation_perf(point, apps_for_perf, base_seed, jobs, cache_dir)
        rows.append(
            Table7Row(
                design_point=point,
                label=DESIGN_POINT_LABELS[point],
                bugs_missed=missed,
                slowdown_over_waffle=ablated_perf / waffle_perf if waffle_perf > 0 else 0.0,
            )
        )
    return rows


# ======================================================================
# Section 6.2 -- delay-free stress control
# ======================================================================


@dataclass
class StressRow:
    bug_id: str
    runs: int
    spontaneous_manifestations: int


def _stress_cell(bug_id: str, runs: int, base_seed: int) -> StressRow:
    test = bug_workload(bug_id)
    runner = StressRunner(DEFAULT_CONFIG.with_seed(base_seed))
    outcome = runner.detect(test, max_detection_runs=runs)
    return StressRow(
        bug_id=bug_id,
        runs=len(outcome.runs),
        spontaneous_manifestations=runner.spontaneous_manifestations(outcome),
    )


def stress_control(
    runs: int = 50,
    bugs: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    jobs: int = 1,
) -> List[StressRow]:
    """Re-run each bug-triggering input ``runs`` times without delays;
    the paper's control says no bug ever manifests."""
    selected = [b for b in all_bugs() if bugs is None or b.bug_id in bugs]
    return map_units(
        _stress_cell,
        [(bug.bug_id, runs, base_seed) for bug in selected],
        jobs,
    )


# ======================================================================
# Extension -- the full Table 1 design space, quantified
# ======================================================================


@dataclass
class RelatedToolsRow:
    """Runs-to-expose and end-to-end slowdown for one bug x tool."""

    bug_id: str
    app: str
    runs: Dict[str, Optional[int]] = field(default_factory=dict)
    slowdowns: Dict[str, Optional[float]] = field(default_factory=dict)


def _related_cell(
    bug_id: str,
    budget: int,
    base_seed: int,
    cache_dir: Optional[str],
) -> RelatedToolsRow:
    from ..baselines.related import RELATED_TOOLS
    from ..baselines.stress import baseline_time_ms

    tool_factories = dict(RELATED_TOOLS)
    tool_factories["waffle"] = Waffle

    bug = get_bug(bug_id)
    test = bug_workload(bug_id)
    cache = open_cache(cache_dir)
    test_id = _test_id(bug.app, bug.test_name)
    baseline = baseline_time_ms(test, seed=base_seed)
    row = RelatedToolsRow(bug_id=bug.bug_id, app=bug.app)
    for name, factory in tool_factories.items():
        runs, times = _detect_attempts(
            factory, bug, test, 1, budget, base_seed - 1, cache, "related:" + name, test_id
        )
        matched = runs[0] is not None
        row.runs[name] = runs[0]
        row.slowdowns[name] = (
            times[0] / baseline if matched and baseline > 0 else None
        )
    return row


def related_tools_comparison(
    bugs: Optional[Sequence[str]] = None,
    budget: int = 60,
    base_seed: int = 1,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> List[RelatedToolsRow]:
    """Extension experiment: quantify Table 1's qualitative matrix.

    Runs simplified models of RaceFuzzer, CTrigger, RaceMob and
    DataCollider (see :mod:`repro.baselines.related`) next to Waffle on
    the Table 4 bug suite. The paper's section 7 claim -- prior
    validation-style tools "naturally require many more runs than
    Waffle" -- becomes measurable: the one-candidate-per-run tools sweep
    |S| candidates on the dense apps, and the sampling tools miss the
    long-gap bugs outright.
    """
    selected = [b for b in all_bugs() if bugs is None or b.bug_id in bugs]
    return map_units(
        _related_cell,
        [(bug.bug_id, budget, base_seed, cache_dir) for bug in selected],
        jobs,
    )


# ======================================================================
# Figure 5 -- the delay-interference window
# ======================================================================


@dataclass
class Figure5Point:
    """One sweep point: when the interfering delay starts, and whether
    the target bug still manifests."""

    interferer_at_ms: float
    interferer_delay_overlaps_window: bool
    bug_exposed: bool


class _TwoSiteDelays(InstrumentationHook):
    """Fixed delays at the target use site and the interfering site."""

    def __init__(self, target_delay_ms: float, interferer_delay_ms: float):
        self.target_delay_ms = target_delay_ms
        self.interferer_delay_ms = interferer_delay_ms

    def before_access(self, pending) -> float:
        if pending.location.site == "fig5.use":
            return self.target_delay_ms
        if pending.location.site == "fig5.interferer":
            return self.interferer_delay_ms
        return 0.0


def _figure5_cell(
    interferer_at: float,
    target_delay_ms: float,
    interferer_delay_ms: float,
    seed: int,
) -> Figure5Point:
    sim = Simulation(
        seed=seed, hook=_TwoSiteDelays(target_delay_ms, interferer_delay_ms)
    )
    ref = sim.ref("fig5_obj")
    scratch = sim.ref("fig5_scratch")
    gate = sim.event("fig5.gate")

    def user():
        yield from sim.sleep(5.0)
        yield from sim.use(ref, member="Touch", loc="fig5.use")

    def disposer(at=interferer_at):
        yield from sim.sleep(at)
        yield from sim.use(scratch, member="Prep", loc="fig5.interferer")
        yield from gate.wait()  # slack absorbs early delays
        yield from sim.sleep(0.5)
        yield from sim.dispose(ref, loc="fig5.dispose")

    def timer():
        yield from sim.sleep(9.5)
        gate.set()

    def root():
        yield from sim.assign(ref, sim.new("fig5.Obj"), loc="fig5.init")
        yield from sim.assign(scratch, sim.new("fig5.Scratch"), loc="fig5.scratch_init")
        threads = [
            sim.fork(user(), name="fig5-user"),
            sim.fork(disposer(), name="fig5-disposer"),
            sim.fork(timer(), name="fig5-timer"),
        ]
        yield from sim.join_all(threads)

    result = sim.run(root())
    exposed = result.crashed and isinstance(result.first_failure(), NullReferenceError)
    use_lands_at = 5.0 + target_delay_ms
    overlaps = interferer_at + interferer_delay_ms + 0.5 > use_lands_at
    return Figure5Point(interferer_at, overlaps, exposed)


def figure5_interference_window(
    interferer_times_ms: Sequence[float] = (0.0, 1.0, 2.0, 6.0, 7.0, 8.0),
    target_delay_ms: float = 20.0,
    interferer_delay_ms: float = 20.0,
    seed: int = 0,
    jobs: int = 1,
) -> List[Figure5Point]:
    """Quantify Figure 5: an equal-length delay at l* on the disposer's
    thread cancels the reordering delay at l1 *only when it runs late
    enough to still be pending when the delayed use lands* -- an early
    l* delay is absorbed by the thread's slack before the disposal and
    interferes with nothing.

    Scenario (delay-free timeline): thread 1 uses the object at t=5;
    thread 2 executes l* at a swept time, waits for a timer gate at
    t=9.5, then disposes at t~10. Both sites receive the same 20 ms
    delay (the WaffleBasic fixed-length setting that makes Figure 4's
    cancellations deterministic). The delayed use lands at ~25 ms; the
    disposal lands at max(10, t* + 20) + 0.5 -- so for t* late enough
    that the two delay windows still overlap at the use's landing, the
    disposal is pushed past the use and the bug is hidden.
    """
    return map_units(
        _figure5_cell,
        [
            (interferer_at, target_delay_ms, interferer_delay_ms, seed)
            for interferer_at in interferer_times_ms
        ],
        jobs,
    )
