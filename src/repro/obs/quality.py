"""Detection-quality joins: sensitivity curves and budget attribution.

The generator (:mod:`repro.gen`) plants bugs with analytically known
happens-before gaps -- detectable ones far inside the near-miss window,
undetectable ones far beyond it -- which makes the detector's
*sensitivity curve* (detection rate vs. planted gap) measurable against
ground truth instead of estimated. This module performs the joins:

* :func:`workload_records` -- one record per planted bug, joining a
  fuzz row (or ``fuzz_workload`` event) against the oracle regenerated
  from its seed (``generate_spec`` is a pure function of the seed; the
  recorded spec-hash prefix guards against generator drift);
* :func:`sensitivity_curve` -- detection rate per gap bin, overall and
  per topology / per bug kind, plus the detectable/undetectable band
  rollup the acceptance gate pins;
* :func:`load_run_ledger` -- per-site injection/skip/delay aggregation
  out of an obs directory's telemetry, deduplicated by deterministic
  run identity (the same convention :mod:`repro.obs.campaign` applies
  to work-product events) so chaos-retried and resumed campaigns
  attribute identically to clean ones;
* :func:`site_attribution` -- which sites consumed delay budget and
  which skips were *counterfactual*: a skipped site that appears in a
  bug dossier's candidate pair (or a planted bug's racing pair) is a
  skip that could have cost or delayed a detection.

Everything here is pure observation over rows/events/files already on
disk; nothing feeds back into the simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Gap-bin upper edges (virtual ms) for the sensitivity curve. The
#: generator's bands -- detectable [4, 40] (racy publication down to 2),
#: undetectable [140, 240] -- fall on bin boundaries; the empty middle
#: bins are where a planted gap would straddle the near-miss window.
GAP_BIN_EDGES: Tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0, 140.0, 180.0, 240.0)

#: Default near-miss window (mirrors ``WaffleConfig.near_miss_window_ms``;
#: importing core config here would pull the simulator into a pure
#: analysis module).
DEFAULT_WINDOW_MS = 100.0


# ----------------------------------------------------------------------
# Ground-truth joins (sensitivity)
# ----------------------------------------------------------------------


def rows_from_view(view: Any) -> List[dict]:
    """Fuzz rows out of a folded :class:`~repro.obs.campaign.CampaignView`.

    The view's ``fuzz_workload`` events carry the found *count*, not the
    found bug ids; :func:`workload_records` reconstructs the id set from
    the oracle invariants when the workload passed. Rows sort by seed so
    every downstream artifact is independent of event arrival order.
    """
    return sorted(
        (dict(event) for event in view.fuzz.values()),
        key=lambda row: int(row.get("seed", 0)),
    )


def resolvable_fuzz_events(events: Iterable[dict]) -> Tuple[int, int]:
    """``(resolvable, mismatched)`` counts: an event is resolvable when
    ``generate_spec(seed)`` still hashes to its recorded spec prefix."""
    from ..gen.spec import generate_spec, spec_hash

    resolvable = mismatched = 0
    for event in events:
        claimed = str(event.get("spec") or event.get("spec_hash") or "")
        try:
            regenerated = spec_hash(generate_spec(int(event.get("seed", 0))))
        except Exception:  # a hostile/corrupt seed field must not raise
            mismatched += 1
            continue
        if claimed and not regenerated.startswith(claimed):
            mismatched += 1
        else:
            resolvable += 1
    return resolvable, mismatched


def workload_records(
    rows: Sequence[dict],
    near_miss_window_ms: float = DEFAULT_WINDOW_MS,
) -> Tuple[List[dict], List[str]]:
    """One record per planted bug: ground truth joined with the verdict.

    ``rows`` are fuzz-table rows (``found`` is the bug-id list) or
    ``fuzz_workload`` events (``found`` is a count). For events the id
    set is recovered from the oracle invariants: an ``ok`` row means the
    found set equals the detectable set *exactly* (recall + soundness +
    detectability all held), so the join loses nothing; a failing event
    row is reported as unresolvable rather than guessed at.
    """
    from ..gen.builder import planted_oracle
    from ..gen.spec import generate_spec, spec_hash

    records: List[dict] = []
    problems: List[str] = []
    for row in rows:
        try:
            seed = int(row["seed"])
        except (KeyError, TypeError, ValueError):
            problems.append("row without a usable seed: %r" % (row,))
            continue
        spec = generate_spec(seed)
        claimed = str(row.get("spec") or row.get("spec_hash") or "")
        if claimed and not spec_hash(spec).startswith(claimed):
            problems.append(
                "seed %d: recorded spec %s does not match the regenerated "
                "spec (generator drift); excluded from the curve" % (seed, claimed)
            )
            continue
        truth = planted_oracle(spec, near_miss_window_ms)
        found = row.get("found")
        if isinstance(found, (list, tuple, set, frozenset)):
            found_ids = set(str(b) for b in found)
        elif row.get("ok", True):
            # Oracle invariants held, so found == detectable exactly.
            found_ids = {e["bug_id"] for e in truth if e["detectable"]}
        else:
            problems.append(
                "seed %d: failing workload without a found-id list; its "
                "bugs are excluded from the curve" % seed
            )
            continue
        for entry in truth:
            records.append(
                {
                    "seed": seed,
                    "bug_id": entry["bug_id"],
                    "kind": entry["kind"],
                    "topology": spec.topology,
                    "gap_ms": float(entry["gap_ms"]),
                    "detectable": bool(entry["detectable"]),
                    "found": entry["bug_id"] in found_ids,
                    "pair": list(entry["pair"]),
                    "fault_site": entry["fault_site"],
                }
            )
    return records, problems


def _bin_rows(records: Sequence[dict], edges: Sequence[float]) -> List[dict]:
    bounds = list(edges) + [float("inf")]
    bins = [
        {"lo": (0.0 if index == 0 else bounds[index - 1]), "hi": hi,
         "planted": 0, "found": 0}
        for index, hi in enumerate(bounds)
    ]
    for record in records:
        gap = record["gap_ms"]
        for row in bins:
            if gap <= row["hi"]:
                row["planted"] += 1
                row["found"] += 1 if record["found"] else 0
                break
    out = []
    for row in bins:
        if not row["planted"]:
            continue
        row["rate"] = round(row["found"] / row["planted"], 4)
        out.append(row)
    return out


def _band(records: Sequence[dict], detectable: bool) -> dict:
    member = [r for r in records if r["detectable"] is detectable]
    found = sum(1 for r in member if r["found"])
    return {
        "planted": len(member),
        "found": found,
        "rate": round(found / len(member), 4) if member else None,
    }


def sensitivity_curve(
    records: Sequence[dict], edges: Sequence[float] = GAP_BIN_EDGES
) -> dict:
    """Detection rate vs. planted gap: overall, per topology, per kind.

    Returns only JSON-plain, deterministically ordered data: bins are in
    gap order, group keys sorted, rates rounded -- so rendering it (or
    hashing it) is reproducible across jobs/engine/chaos variants.
    """
    by_topology: Dict[str, List[dict]] = {}
    by_kind: Dict[str, List[dict]] = {}
    for record in records:
        by_topology.setdefault(record["topology"], []).append(record)
        by_kind.setdefault(record["kind"], []).append(record)
    return {
        "records": len(records),
        "found": sum(1 for r in records if r["found"]),
        "bins": _bin_rows(records, edges),
        "by_topology": {
            name: _bin_rows(group, edges) for name, group in sorted(by_topology.items())
        },
        "by_kind": {
            name: _bin_rows(group, edges) for name, group in sorted(by_kind.items())
        },
        "bands": {
            "detectable": _band(records, True),
            "undetectable": _band(records, False),
        },
    }


def reconcile_records(records: Sequence[dict], rows: Sequence[dict]) -> List[str]:
    """Exact reconciliation of join records against their source rows.

    For every row carrying a found-id list (fuzz-table rows do), the
    per-bug ``found`` flags must reproduce that list exactly, and the
    planted/detectable counts must match the row's own counts -- any
    divergence means the join, not the detector, is broken.
    """
    problems: List[str] = []
    by_seed: Dict[int, List[dict]] = {}
    for record in records:
        by_seed.setdefault(record["seed"], []).append(record)
    for row in rows:
        seed = int(row.get("seed", -1))
        joined = by_seed.get(seed)
        if joined is None:
            continue
        if len(joined) != int(row.get("planted", len(joined))):
            problems.append(
                "seed %d: %d joined bug(s) vs %s planted in the row"
                % (seed, len(joined), row.get("planted"))
            )
        detectable = sum(1 for r in joined if r["detectable"])
        if detectable != int(row.get("detectable", detectable)):
            problems.append(
                "seed %d: %d detectable joined vs %s in the row"
                % (seed, detectable, row.get("detectable"))
            )
        found = row.get("found")
        if isinstance(found, (list, tuple, set, frozenset)):
            joined_found = {r["bug_id"] for r in joined if r["found"]}
            if joined_found != set(str(b) for b in found):
                problems.append(
                    "seed %d: joined found set %s != row found set %s"
                    % (seed, sorted(joined_found), sorted(found))
                )
    return problems


# ----------------------------------------------------------------------
# Delay-budget attribution (telemetry side)
# ----------------------------------------------------------------------


def load_run_ledger(directory: Any) -> dict:
    """Deduplicated (run, decisions) ledger out of an obs directory.

    Raw telemetry double-counts under chaos: a retried cell re-runs the
    same pure function in another worker and appends an identical run
    record (plus identical decision events) to *its* file. Dedup key:
    every deterministic run field (``wall_ms`` and the process-local
    ``run_seq`` excluded) plus the run's decision-event tuple -- the
    same whole-value identity convention the campaign view applies to
    work-product events, so a clean, a chaos-retried, and a resumed
    campaign produce the same ledger.
    """
    root = Path(directory)
    ledger = {
        "runs": 0,
        "duplicates": 0,
        "decisions": 0,
        "recovered_lines": 0,
        "warnings": [],
        "entries": [],  # (run dict, [decision dicts]) in identity order
    }
    if not root.is_dir():
        ledger["warnings"].append("obs directory %s does not exist" % root)
        return ledger
    seen: Dict[Tuple, int] = {}
    entries: List[Tuple[Tuple, dict, List[dict]]] = []
    for path in sorted(root.glob("telemetry-*.jsonl")):
        text = path.read_text()
        lines = text.splitlines()
        truncated_tail = bool(lines) and not text.endswith("\n")
        runs_in_file: List[dict] = []
        decisions_by_seq: Dict[int, List[dict]] = {}
        for line_no, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if truncated_tail and line_no == len(lines):
                    ledger["recovered_lines"] += 1
                    continue
                ledger["warnings"].append("%s:%d: unparseable line" % (path.name, line_no))
                continue
            kind = record.get("type")
            if kind == "run":
                runs_in_file.append(record)
            elif kind == "inject":
                decisions_by_seq.setdefault(int(record.get("run", 0)), []).append(record)
        for run in runs_in_file:
            decisions = decisions_by_seq.get(int(run.get("run_seq", 0)), [])
            identity = _run_identity(run, decisions)
            if identity in seen:
                ledger["duplicates"] += 1
                continue
            seen[identity] = 1
            entries.append((identity, run, decisions))
    entries.sort(key=lambda item: item[0])
    ledger["entries"] = [(run, decisions) for _identity, run, decisions in entries]
    ledger["runs"] = len(entries)
    ledger["decisions"] = sum(len(d) for _i, _r, d in entries)
    return ledger


def _run_identity(run: dict, decisions: Sequence[dict]) -> Tuple:
    """Deterministic identity of one run and its decision events."""
    run_key = tuple(
        sorted(
            (k, str(v))
            for k, v in run.items()
            if k not in ("wall_ms", "run_seq", "type")
        )
    )
    decision_key = tuple(
        sorted(
            tuple(sorted((k, str(v)) for k, v in d.items() if k not in ("run", "type")))
            for d in decisions
        )
    )
    return (run_key, decision_key)


def dossier_pair_sites(dossiers: Sequence[dict]) -> Set[str]:
    """Every site participating in a dossier's candidate-pair provenance
    (both sides of each near-miss pair, plus the fault site)."""
    sites: Set[str] = set()
    for item in dossiers:
        payload = item.get("dossier", item) or {}
        for entry in payload.get("provenance", ()) or ():
            for key in ("delay_site", "other_site"):
                value = entry.get(key)
                if value:
                    sites.add(str(value))
        report = payload.get("report", {}) or {}
        fault = report.get("fault_location")
        if fault:
            sites.add(str(fault))
    return sites


def site_attribution(
    ledger: dict,
    dossiers: Sequence[dict] = (),
    records: Sequence[dict] = (),
) -> List[dict]:
    """Per-site delay-budget attribution over the deduplicated ledger.

    One row per site that ever saw an injection decision: delay budget
    consumed (injections and total delay ms) and skips by reason. The
    ``counterfactual`` flag marks a site with skips that appears in a
    bug's pair -- a dossier's provenance pair or a planted bug's racing
    pair -- i.e. a skip that may have cost or delayed a detection.
    """
    pair_sites = dossier_pair_sites(dossiers)
    for record in records:
        for site in record.get("pair", ()):
            pair_sites.add(str(site))
    sites: Dict[str, dict] = {}
    for _run, decisions in ledger.get("entries", ()):
        for decision in decisions:
            site = str(decision.get("site", "?"))
            row = sites.get(site)
            if row is None:
                row = sites[site] = {
                    "site": site,
                    "considered": 0,
                    "injected": 0,
                    "delay_ms": 0.0,
                    "skips": {"decay": 0, "interference": 0, "budget": 0},
                }
            row["considered"] += 1
            if decision.get("action") == "inject":
                row["injected"] += 1
                row["delay_ms"] += float(decision.get("len_ms", 0.0))
            else:
                reason = str(decision.get("reason", "decay"))
                row["skips"][reason] = row["skips"].get(reason, 0) + 1
    out = []
    for site in sorted(sites):
        row = sites[site]
        row["delay_ms"] = round(row["delay_ms"], 4)
        row["skipped"] = sum(row["skips"].values())
        row["counterfactual"] = bool(row["skipped"]) and site in pair_sites
        out.append(row)
    out.sort(key=lambda r: (-r["delay_ms"], -r["injected"], r["site"]))
    return out


def skip_rollup(attribution: Sequence[dict]) -> dict:
    """Campaign-wide skip taxonomy out of the per-site attribution."""
    rollup = {
        "considered": 0,
        "injected": 0,
        "delay_ms": 0.0,
        "decay": 0,
        "interference": 0,
        "budget": 0,
        "counterfactual_sites": 0,
    }
    for row in attribution:
        rollup["considered"] += row["considered"]
        rollup["injected"] += row["injected"]
        rollup["delay_ms"] += row["delay_ms"]
        for reason in ("decay", "interference", "budget"):
            rollup[reason] += row["skips"].get(reason, 0)
        if row["counterfactual"]:
            rollup["counterfactual_sites"] += 1
    rollup["delay_ms"] = round(rollup["delay_ms"], 4)
    rollup["skipped"] = rollup["decay"] + rollup["interference"] + rollup["budget"]
    return rollup


# ----------------------------------------------------------------------
# Convenience: a quality bundle from heterogeneous sources
# ----------------------------------------------------------------------


def build_quality(
    view: Any = None,
    rows: Optional[Sequence[dict]] = None,
    obs_data: Any = None,
    obs_dir: Any = None,
    near_miss_window_ms: float = DEFAULT_WINDOW_MS,
) -> dict:
    """Assemble the full quality picture one call site at a time needs.

    ``rows`` (fuzz-table rows, id-carrying) win over ``view`` events;
    the ledger comes from ``obs_dir`` when given. Every component is
    optional -- the dashboard renders its headings with empty sections
    rather than hiding them, so a census of what's absent is part of
    the artifact.
    """
    source_rows = list(rows) if rows is not None else (
        rows_from_view(view) if view is not None else []
    )
    records, problems = workload_records(source_rows, near_miss_window_ms)
    curve = sensitivity_curve(records) if records else None
    ledger = load_run_ledger(obs_dir) if obs_dir is not None else None
    dossiers = list(getattr(obs_data, "dossiers", ()) or ())
    attribution = (
        site_attribution(ledger, dossiers=dossiers, records=records)
        if ledger is not None
        else []
    )
    return {
        "records": records,
        "curve": curve,
        "ledger": ledger,
        "attribution": attribution,
        "rollup": skip_rollup(attribution) if attribution else None,
        "problems": problems,
    }
