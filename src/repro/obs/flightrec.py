"""Bounded ring-buffer flight recorder for scheduler/injection events.

The telemetry session (:mod:`repro.obs.telemetry`) answers *how many*
decisions each run made; the flight recorder answers *which* decisions,
in order, with enough context to assemble a bug dossier after a crash:
the last N scheduler events (thread lifecycle, context switches),
injection decisions (inject/skip with the reason taxonomy), near-miss
pair observations and pruning verdicts (with the vector clocks that
justified them).

Activation model mirrors the telemetry session: a process-global
recorder, off by default. ``install(capacity)`` enables it;
instrumented constructors bind :func:`recorder` once and branch on
``is not None``, so a disabled process pays one pointer check per
guarded site -- the same budget ``benchmarks/bench_obs.py`` enforces
for the telemetry session. Events live in a ``deque(maxlen=capacity)``:
memory is bounded no matter how long the session runs, and eviction is
counted (``dropped``) so a dossier can say when provenance was lost.

Like the telemetry session, the recorder is purely observational: it
never feeds values back into a run, so runs are bit-identical with the
recorder installed or not. :func:`suspended` temporarily hides the
recorder -- the dossier builder uses it so its verification replays do
not pollute the ring that is being snapshotted.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Environment variable enabling the flight recorder (the propagation
#: channel to ``--jobs`` pool workers, like ``WAFFLE_OBS_DIR``). The
#: value is the ring capacity; any non-integer truthy value means the
#: default capacity.
FLIGHTREC_ENV = "WAFFLE_FLIGHTREC"

DEFAULT_CAPACITY = 4096

#: Event kinds recorded (``k`` field): scheduler lifecycle
#: (``run_start`` | ``thread_start`` | ``thread_end`` | ``switch`` |
#: ``fault``), injection decisions (``inject`` | ``skip``), candidate
#: pipeline (``near_miss`` | ``prune_parent_child`` | ``prune_hb`` |
#: ``pair_removed``), and resilience marks (``hang`` -- a real-threads
#: ``join_all`` deadline naming the stuck threads; ``cell_fault`` -- the
#: campaign supervisor's fault-boundary record for one cell attempt).
EVENT_KINDS = (
    "run_start",
    "thread_start",
    "thread_end",
    "switch",
    "fault",
    "inject",
    "skip",
    "near_miss",
    "prune_parent_child",
    "prune_hb",
    "pair_removed",
    "hang",
    "cell_fault",
)


class FlightRecorder:
    """A bounded, append-only ring of timeline events.

    Events are plain dicts (``seq``, ``k``, ``t`` plus kind-specific
    fields) so a ring snapshot is directly JSON-serializable into a
    dossier. ``seq`` is a lifetime sequence number: run boundaries are
    marked by ``run_start`` events and remembered as sequence marks, so
    ``events_for_run`` works even after older events were evicted.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        #: Lifetime number of events recorded.
        self.recorded: int = 0
        #: Events evicted from the ring (recorded - retained).
        self.dropped: int = 0
        #: Sequence number of the most recent ``begin_run``.
        self.run_seq: int = 0
        self._run_marks: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._ring)

    # -- Recording (hot path; callers guard with ``is not None``) ------

    def record(self, k: str, t_ms: float = 0.0, **fields: Any) -> dict:
        """Append one event; returns it (for tests/callers to enrich).

        The positional name is ``k`` (not ``kind``) so kind-specific
        payload fields may themselves be called ``kind`` -- e.g. the
        candidate kind on ``near_miss``/``pair_removed`` events.
        """
        if len(self._ring) == self.capacity:
            self.dropped += 1
        event: Dict[str, Any] = {"seq": self.recorded, "k": k, "t": round(t_ms, 4)}
        if fields:
            event.update(fields)
        self.recorded += 1
        self._ring.append(event)
        return event

    def begin_run(self, kind: str = "", test: str = "", seed: int = 0) -> int:
        """Mark the start of a run; subsequent events belong to it."""
        self.run_seq += 1
        self._run_marks[self.run_seq] = self.recorded
        self.record("run_start", run=self.run_seq, run_kind=kind, test=test, seed=seed)
        return self.run_seq

    # -- Inspection ------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """Copy of the retained timeline, oldest first."""
        return list(self._ring)

    def events(self, kind: Optional[str] = None) -> List[dict]:
        if kind is None:
            return self.snapshot()
        return [e for e in self._ring if e["k"] == kind]

    def events_for_run(self, run_seq: int) -> List[dict]:
        """Retained events of one run (between its mark and the next)."""
        start = self._run_marks.get(run_seq)
        if start is None:
            return []
        end = self._run_marks.get(run_seq + 1, self.recorded)
        return [e for e in self._ring if start <= e["seq"] < end]


_recorder: Optional[FlightRecorder] = None


def recorder() -> Optional[FlightRecorder]:
    """The installed recorder, or None when disabled.

    Hot-path contract (same as :func:`repro.obs.session`): bind once
    per constructed object, branch on ``is not None``.
    """
    return _recorder


def active() -> bool:
    return _recorder is not None


def install(capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Install a fresh process-global recorder and return it.

    Must run before the instrumented objects (schedulers, engines,
    trackers, hooks) are constructed -- they bind at construction time.
    """
    global _recorder
    _recorder = FlightRecorder(capacity)
    return _recorder


def uninstall() -> None:
    global _recorder
    _recorder = None


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily hide the recorder (dossier verification replays)."""
    global _recorder
    saved = _recorder
    _recorder = None
    try:
        yield
    finally:
        _recorder = saved


def _configure_from_env() -> None:
    value = os.environ.get(FLIGHTREC_ENV)
    if not value:
        return
    try:
        capacity = int(value)
    except ValueError:
        capacity = DEFAULT_CAPACITY
    install(capacity if capacity > 0 else DEFAULT_CAPACITY)


def _reset_after_fork() -> None:
    # A forked pool worker inherits the parent's ring; its contents are
    # the parent's story. Start the child with a fresh ring of the same
    # capacity so per-run marks and sequence numbers stay coherent.
    global _recorder
    if _recorder is not None:
        _recorder = FlightRecorder(_recorder.capacity)


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)
