"""OpenMetrics text export for scrape-based dashboards.

Renders one ``metrics.prom`` from (a) the merged telemetry-registry
snapshot and (b) gauges folded out of the deduplicated campaign view
and the quality joins. The export is built for *determinism*, not
liveness:

* registry **gauges are never exported** -- they are process-local
  instants ("latest wins" on merge) and would differ run to run;
* any metric whose name mentions wall time is dropped -- virtual time
  is the deterministic clock here;
* with ``deterministic_only=True`` the operational families (faults,
  cache, retries, watchdog, chaos, checkpoints) and the raw registry
  families are dropped too, leaving only data derived from
  deduplicated work products -- a chaos-retried, resumed, or cached
  campaign then exports byte-identically to a clean one.

The grammar subset emitted (``# TYPE``/``# HELP``, ``_total`` counter
samples, cumulative ``_bucket{le=...}`` histograms, terminal ``# EOF``)
is checked by :func:`validate_openmetrics`, which the obs checker runs
in CI.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>[^\s]+)$"
)

#: Substring filter: anything timed against the wall clock is dropped
#: from the export (virtual time is the deterministic clock).
NONDETERMINISTIC_MARKERS = ("wall",)


def sanitize_name(name: str) -> str:
    """Registry name -> OpenMetrics name (dots and dashes become ``_``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value) -> str:
    number = float(value)
    if number.is_integer():
        return "%d" % int(number)
    return repr(number)


def _labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join('%s="%s"' % (k, _escape_label(str(v))) for k, v in pairs)
    return "{%s}" % inner


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._declared: Dict[str, str] = {}

    def family(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared[name] = kind
        self.lines.append("# TYPE %s %s" % (name, kind))
        self.lines.append("# HELP %s %s" % (name, help_text))

    def sample(self, name: str, value, labels: Sequence[Tuple[str, str]] = ()) -> None:
        self.lines.append("%s%s %s" % (name, _labels(labels), _fmt(value)))

    def counter(self, name: str, value, help_text: str,
                labels: Sequence[Tuple[str, str]] = ()) -> None:
        self.family(name, "counter", help_text)
        self.sample(name + "_total", value, labels)

    def gauge(self, name: str, value, help_text: str,
              labels: Sequence[Tuple[str, str]] = ()) -> None:
        self.family(name, "gauge", help_text)
        self.sample(name, value, labels)

    def histogram(self, name: str, hist: dict, help_text: str) -> None:
        self.family(name, "histogram", help_text)
        cumulative = 0
        bounds = list(hist.get("buckets", ()))
        counts = list(hist.get("bucket_counts", ()))
        for index, bound in enumerate(bounds):
            cumulative += counts[index] if index < len(counts) else 0
            self.sample(name + "_bucket", cumulative, (("le", _fmt(bound)),))
        self.sample(name + "_bucket", int(hist.get("count", 0)), (("le", "+Inf"),))
        # Per-process partial sums merge in worker order; rounding washes
        # out float associativity so --jobs N exports byte-identically.
        self.sample(name + "_sum", round(float(hist.get("sum", 0)), 6))
        self.sample(name + "_count", int(hist.get("count", 0)))

    def text(self) -> str:
        return "\n".join(self.lines + ["# EOF"]) + "\n"


def _nondeterministic(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in NONDETERMINISTIC_MARKERS)


def render_openmetrics(
    snapshot: Optional[dict] = None,
    view=None,
    quality: Optional[dict] = None,
    deterministic_only: bool = False,
) -> str:
    """Build the ``metrics.prom`` text. All inputs are optional; the
    export is stable under permutation of its sources (names sorted,
    label sets in fixed order)."""
    writer = _Writer()

    # -- registry families (raw telemetry; dropped in deterministic mode,
    #    where chaos retries would double-count per-process sums) -------
    if snapshot and not deterministic_only:
        for name in sorted(snapshot.get("counters", ())):
            if _nondeterministic(name):
                continue
            writer.counter(
                "waffle_" + sanitize_name(name),
                snapshot["counters"][name],
                "telemetry counter %s" % name,
            )
        for name in sorted(snapshot.get("histograms", ())):
            if _nondeterministic(name):
                continue
            writer.histogram(
                "waffle_" + sanitize_name(name),
                snapshot["histograms"][name],
                "telemetry histogram %s" % name,
            )
        # registry gauges are intentionally never exported: per-process
        # instants with last-wins merge semantics are not reproducible.

    # -- campaign fold: funnel (deduplicated -> deterministic) ----------
    if view is not None:
        writer.gauge("waffle_funnel_pairs_candidates", view.pairs_candidates,
                     "candidate pairs discovered by preparation analysis")
        writer.gauge("waffle_funnel_delays_injected", view.delays_injected,
                     "delays injected across detection runs")
        writer.gauge("waffle_funnel_pairs_observed", view.pairs_observed,
                     "near-miss pairs observed during detection")
        writer.gauge("waffle_funnel_detections", len(view.detected),
                     "detections matching their expectation")
        writer.gauge("waffle_campaign_cells", view.cells_total,
                     "campaign cells (expected or seen)")
        writer.gauge("waffle_campaign_cells_done", view.cells_done,
                     "campaign cells completed")
        if not deterministic_only:
            writer.gauge("waffle_ops_retries", view.retries,
                         "cell retries (chaos / crash recovery)")
            writer.gauge("waffle_ops_resumed", view.resumed,
                         "cells resumed from checkpoint")
            writer.gauge("waffle_ops_watchdog_kills", view.watchdog_kills,
                         "workers killed by the watchdog")
            writer.gauge("waffle_ops_chaos_fires", view.chaos_fires,
                         "chaos faults fired")
            writer.gauge("waffle_ops_checkpoints", view.checkpoints,
                         "checkpoints written")
            writer.gauge("waffle_ops_cache_hits", view.cache_hits,
                         "result-cache hits")
            writer.gauge("waffle_ops_cache_misses", view.cache_misses,
                         "result-cache misses")
            for kind in sorted(view.faults):
                writer.gauge("waffle_ops_faults", view.faults[kind],
                             "injected faults by kind", (("kind", kind),))

    # -- quality joins (ground-truth reconciled -> deterministic) -------
    if quality:
        curve = quality.get("curve") or {}
        bands = curve.get("bands", {})
        for band in ("detectable", "undetectable"):
            stats = bands.get(band)
            if not stats:
                continue
            labels = (("band", band),)
            writer.gauge("waffle_quality_planted", stats["planted"],
                         "planted bugs by ground-truth band", labels)
            writer.gauge("waffle_quality_found", stats["found"],
                         "found bugs by ground-truth band", labels)
            if stats["rate"] is not None:
                writer.gauge("waffle_quality_detection_rate", stats["rate"],
                             "detection rate by ground-truth band", labels)
        for topology in sorted(curve.get("by_topology", ())):
            bins = curve["by_topology"][topology]
            planted = sum(b["planted"] for b in bins)
            found = sum(b["found"] for b in bins)
            writer.gauge(
                "waffle_quality_topology_detection_rate",
                round(found / planted, 4) if planted else 0.0,
                "detection rate by workload topology",
                (("topology", topology),),
            )
        rollup = quality.get("rollup")
        if rollup and not deterministic_only:
            writer.gauge("waffle_budget_injected", rollup["injected"],
                         "injection decisions that placed a delay")
            writer.gauge("waffle_budget_delay_ms", rollup["delay_ms"],
                         "total injected delay (virtual ms)")
            for reason in ("decay", "interference", "budget"):
                writer.gauge("waffle_budget_skips", rollup[reason],
                             "skipped injections by reason",
                             (("reason", reason),))
            writer.gauge("waffle_budget_counterfactual_sites",
                         rollup["counterfactual_sites"],
                         "sites with skips that sit on a bug's racing pair")

    return writer.text()


def validate_openmetrics(text: str) -> List[str]:
    """Syntax/consistency problems in an OpenMetrics export (empty list
    when clean). Checks the subset this module emits: declarations
    before samples, ``_total`` counter naming, cumulative histogram
    buckets, and the terminal ``# EOF``."""
    problems: List[str] = []
    if not text.endswith("# EOF\n"):
        problems.append("missing terminal '# EOF' line")
    declared: Dict[str, str] = {}
    bucket_state: Dict[str, int] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                problems.append("line %d: malformed TYPE line" % line_no)
                continue
            if parts[2] in declared:
                problems.append("line %d: duplicate TYPE for %s" % (line_no, parts[2]))
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            problems.append("line %d: unknown comment form" % line_no)
            continue
        match = _SAMPLE.match(line)
        if not match:
            problems.append("line %d: unparseable sample" % line_no)
            continue
        name = match.group("name")
        family = _family_of(name, declared)
        if family is None:
            problems.append("line %d: sample %s has no TYPE declaration" % (line_no, name))
            continue
        kind = declared[family]
        if kind == "counter" and not name.endswith("_total"):
            problems.append("line %d: counter sample %s must end in _total" % (line_no, name))
        try:
            float(match.group("value"))
        except ValueError:
            problems.append("line %d: non-numeric value" % line_no)
        if kind == "histogram" and name.endswith("_bucket"):
            labels = match.group("labels") or ""
            if 'le="' not in labels:
                problems.append("line %d: histogram bucket without le label" % line_no)
            else:
                count = int(float(match.group("value")))
                if count < bucket_state.get(family, 0):
                    problems.append(
                        "line %d: histogram %s buckets are not cumulative"
                        % (line_no, family)
                    )
                bucket_state[family] = count
    return problems


def _family_of(sample_name: str, declared: Dict[str, str]) -> Optional[str]:
    if sample_name in declared:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in declared:
                return base
    return None
