"""Aggregate an obs directory into a human-readable run digest.

``repro obs report <dir>`` reads every ``telemetry-*.jsonl`` and
``summary-*.json`` the telemetry sessions wrote (one pair per
participating process -- the CLI process plus any ``--jobs`` workers),
merges the metrics, reconciles injection-decision events against the
per-run summaries, and renders a digest that answers the debugging
questions the subsystem exists for: how many delays were planned,
injected, and skipped -- and *why* -- plus cache effectiveness and
where the wall time went.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from . import eventbus
from .metrics import merge_snapshots
from .telemetry import SKIP_REASONS
from .tracing import chrome_trace_events


@dataclass
class ObsData:
    """Everything parsed out of one obs directory."""

    directory: str
    processes: int = 0
    metrics: Dict[str, Any] = field(default_factory=dict)
    runs: List[dict] = field(default_factory=list)
    inject_events: List[dict] = field(default_factory=list)
    spans: List[dict] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)
    #: Recoverable oddities: a missing directory, a truncated final
    #: JSONL line from a killed worker, an unreadable coverage/dossier
    #: file. Unlike ``parse_errors`` (malformed data *inside* a file's
    #: committed content) these are expected operational noise and are
    #: reported as warnings, never raised.
    warnings: List[str] = field(default_factory=list)
    #: Truncated-tail JSONL lines recovered (skipped) during loading.
    #: These are ``corrupt_record`` faults in the harness taxonomy
    #: (``repro.harness.faults``): a worker killed mid-append commits a
    #: partial line, losing at most one event record per file. The
    #: count feeds :func:`reconcile`, which tolerates exactly this many
    #: missing events so chaos-run artifacts still reconcile.
    recovered_lines: int = 0
    #: Coverage records (``coverage-*.json``, repro.obs.coverage).
    coverage: List[dict] = field(default_factory=list)
    #: Bug dossiers, as ``{"file": name, "dossier": payload}``.
    dossiers: List[dict] = field(default_factory=list)
    #: Campaign event streams (``events-*.jsonl``, repro.obs.eventbus).
    event_streams: List[Any] = field(default_factory=list)


def load_obs_dir(directory: os.PathLike) -> ObsData:
    """Parse and merge every telemetry file under ``directory``.

    Tolerant by design: an empty or missing directory, and the
    partially-written files a killed ``--jobs`` worker leaves behind
    (most commonly a truncated final JSONL line with no newline), are
    reported in :attr:`ObsData.warnings` instead of raising.
    """
    root = Path(directory)
    data = ObsData(directory=str(root))
    if not root.is_dir():
        data.warnings.append("obs directory %s does not exist" % root)
        return data
    snapshots: List[dict] = []
    for path in sorted(root.glob("summary-*.json")):
        try:
            payload = json.loads(path.read_text())
            snapshots.append(payload["record"]["metrics"])
            data.processes += 1
        except (ValueError, KeyError) as exc:
            data.parse_errors.append("%s: %s" % (path.name, exc))
    for path in sorted(root.glob("telemetry-*.jsonl")):
        text = path.read_text()
        lines = text.splitlines()
        # A file not ending in a newline was cut off mid-append (the
        # writer flushes whole lines): the unterminated tail is a
        # truncation artifact, not corrupt committed data.
        truncated_tail = bool(lines) and not text.endswith("\n")
        for line_no, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            is_tail = truncated_tail and line_no == len(lines)
            try:
                record = json.loads(line)
            except ValueError as exc:
                if is_tail:
                    data.recovered_lines += 1
                    data.warnings.append(
                        "%s: truncated final line recovered [corrupt_record] "
                        "(killed worker?)" % path.name
                    )
                else:
                    data.parse_errors.append("%s:%d: %s" % (path.name, line_no, exc))
                continue
            kind = record.get("type")
            if kind == "run":
                data.runs.append(record)
            elif kind == "inject":
                data.inject_events.append(record)
            elif kind == "span":
                data.spans.append(record)
    from ..core import persistence

    for path in sorted(root.glob("coverage-*.json")):
        try:
            record = persistence.load_record(path)
        except (ValueError, KeyError, OSError) as exc:
            data.warnings.append("%s: unreadable coverage record (%s)" % (path.name, exc))
            continue
        if record.get("type") == "coverage":
            data.coverage.append(record)
    for path in sorted(root.glob("dossier-*.json")):
        try:
            payload = persistence.load_record(path)["dossier"]
        except (ValueError, KeyError, OSError) as exc:
            data.warnings.append("%s: unreadable dossier (%s)" % (path.name, exc))
            continue
        data.dossiers.append({"file": path.name, "dossier": payload})
    data.metrics = merge_snapshots(snapshots)
    # Campaign event streams ride in the same directory when the bus is
    # active; their anomalies (empty stream, missing meta line, schema
    # version skew, torn tails) surface through the same warning /
    # parse-error channels as telemetry's.
    data.event_streams = eventbus.load_streams(root)
    for stream in data.event_streams:
        data.warnings.extend(stream.warnings)
        data.parse_errors.extend(stream.parse_errors)
    if not data.event_streams and data.metrics.get("counters", {}).get("harness.cells", 0):
        data.warnings.append(
            "harness cells were recorded but no campaign event stream "
            "(events-*.jsonl) is present -- run with --events-dir or a "
            "current --obs-dir to capture one"
        )
    return data


def reconcile(data: ObsData) -> List[str]:
    """Cross-check decision events against run summaries and counters.

    Returns a list of discrepancy descriptions (empty = consistent).
    Only runs that have matching per-decision events are checked; a
    summary alone (e.g. from a process whose events were disabled) is
    not an inconsistency. Events lost to recovered truncated tail lines
    (:attr:`ObsData.recovered_lines`, the ``corrupt_record`` fault
    class) are accounted for: counters may exceed events by at most
    that many records, so a chaos run's artifacts reconcile exactly.
    """
    problems: List[str] = []
    counters = data.metrics.get("counters", {})
    total_skips = sum(counters.get("inject.skipped.%s" % r, 0) for r in SKIP_REASONS)
    skip_events = [e for e in data.inject_events if e.get("action") == "skip"]
    untagged = [e for e in skip_events if e.get("reason") not in SKIP_REASONS]
    if untagged:
        problems.append("%d skip events missing a valid reason tag" % len(untagged))
    skip_deficit = total_skips - len(skip_events)
    if data.inject_events and not (0 <= skip_deficit <= data.recovered_lines):
        problems.append(
            "skip events (%d) != skip counters (%d)" % (len(skip_events), total_skips)
        )
    run_totals = {
        run["run_seq"]: run
        for run in data.runs
        if run.get("considered", 0) or run.get("injected", 0)
    }
    events_by_run: Dict[int, List[dict]] = {}
    for event in data.inject_events:
        events_by_run.setdefault(event.get("run", 0), []).append(event)
    for run_seq, events in events_by_run.items():
        run = run_totals.get(run_seq)
        if run is None:
            continue
        injected = sum(1 for e in events if e["action"] == "inject")
        skipped = sum(1 for e in events if e["action"] == "skip")
        expected_skips = (
            run.get("skipped_decay", 0)
            + run.get("skipped_interference", 0)
            + run.get("skipped_budget", 0)
        )
        inject_deficit = run.get("injected", 0) - injected
        skip_run_deficit = expected_skips - skipped
        if data.recovered_lines and (
            0 <= inject_deficit and 0 <= skip_run_deficit
            and 0 < inject_deficit + skip_run_deficit <= data.recovered_lines
        ):
            # The missing events are exactly the ones lost to recovered
            # truncated lines: expected degradation, not inconsistency.
            continue
        if injected != run.get("injected", 0) or skipped != expected_skips:
            problems.append(
                "run %d (%s): events inject/skip %d/%d vs summary %d/%d"
                % (run_seq, run.get("test", "?"), injected, skipped,
                   run.get("injected", 0), expected_skips)
            )
    return problems


def _fmt_count(value: float) -> str:
    if value >= 1_000_000:
        return "%.1fM" % (value / 1_000_000)
    if value >= 10_000:
        return "%.1fk" % (value / 1_000)
    return "%d" % value


def _fuzz_section(event_streams: List[Any]) -> List[str]:
    """Generated-workload digest from ``fuzz_workload`` events.

    Folds through the campaign view so retried/resumed/cache-hit
    re-emissions collapse, then checks each workload's oracle is still
    *resolvable*: ``generate_spec(seed)`` must hash to the spec prefix
    the event recorded, else the ground truth regenerated today is not
    the one the campaign ran against (generator drift) and sensitivity
    joins against it would be fiction.
    """
    from . import campaign as campaign_mod

    view = campaign_mod.fold_events(eventbus.merge_events(event_streams))
    if not view.fuzz:
        return []
    from .quality import resolvable_fuzz_events

    resolvable, mismatched = resolvable_fuzz_events(view.fuzz.values())
    generated = campaign_mod.fuzz_analytics(view)
    lines: List[str] = ["generated workloads (fuzz)"]
    lines.append(
        "  %d workload(s) oracle-verified   %d with invariant violations"
        % (generated["workloads"], generated["failed"])
    )
    lines.append(
        "  %-10s %9s %11s %6s %9s"
        % ("topology", "workloads", "detectable", "found", "rate")
    )
    for bucket in generated["rows"]:
        lines.append(
            "  %-10s %9d %11d %6d %8.1f%%"
            % (bucket["topology"], bucket["workloads"], bucket["detectable"],
               bucket["found"], 100.0 * bucket["detection_rate"])
        )
    if not resolvable:
        lines.append(
            "  WARNING: %d fuzz event(s) but no oracle rows are resolvable -- "
            "generate_spec(seed) no longer hashes to the recorded spec; "
            "re-run the fuzz campaign against the current generator"
            % len(view.fuzz)
        )
    elif mismatched:
        lines.append(
            "  warning: %d of %d workload(s) have unresolvable oracles "
            "(spec hash mismatch)" % (mismatched, len(view.fuzz))
        )
    lines.append("  sensitivity curves: repro obs dashboard <dir>")
    return lines


def render_report(data: ObsData, max_runs: int = 20) -> str:
    """The human-readable digest behind ``repro obs report``."""
    counters = data.metrics.get("counters", {})
    gauges = data.metrics.get("gauges", {})
    histograms = data.metrics.get("histograms", {})

    lines: List[str] = []
    lines.append("Telemetry digest — %s" % data.directory)
    lines.append(
        "processes: %d   runs recorded: %d   decision events: %d   spans: %d"
        % (data.processes, len(data.runs), len(data.inject_events), len(data.spans))
    )
    if data.parse_errors:
        lines.append("PARSE ERRORS (%d):" % len(data.parse_errors))
        lines.extend("  " + err for err in data.parse_errors[:10])
    if data.warnings:
        lines.append("warnings (%d):" % len(data.warnings))
        lines.extend("  " + msg for msg in data.warnings[:10])

    considered = counters.get("inject.considered", 0)
    injected = counters.get("inject.injected", 0)
    skips = {r: counters.get("inject.skipped.%s" % r, 0) for r in SKIP_REASONS}
    lines.append("")
    lines.append("injection decisions")
    lines.append(
        "  considered %s   injected %s   skipped %s (decay %s, interference %s, budget %s)"
        % (
            _fmt_count(considered),
            _fmt_count(injected),
            _fmt_count(sum(skips.values())),
            _fmt_count(skips["decay"]),
            _fmt_count(skips["interference"]),
            _fmt_count(skips["budget"]),
        )
    )

    lines.append("candidate pipeline")
    lines.append(
        "  near-misses observed %s (%s new pairs)   candidates +%s / -%s"
        "   pruned: parent-child %s, hb-inference %s"
        % (
            _fmt_count(counters.get("nearmiss.pairs_observed", 0)),
            _fmt_count(counters.get("nearmiss.pairs_new", 0)),
            _fmt_count(counters.get("candidates.added", 0)),
            _fmt_count(counters.get("candidates.removed", 0)),
            _fmt_count(counters.get("candidates.pruned_parent_child", 0)),
            _fmt_count(counters.get("candidates.pruned_hb_inference", 0)),
        )
    )

    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    rate = 100.0 * hits / (hits + misses) if (hits + misses) else 0.0
    lines.append("run cache")
    lines.append(
        "  hits %s   misses %s   writes %s   hit rate %.1f%%"
        % (_fmt_count(hits), _fmt_count(misses), _fmt_count(counters.get("cache.writes", 0)), rate)
    )

    fault_counts = {
        name.split("faults.", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("faults.") and value
    }
    resilience = (
        sum(fault_counts.values())
        + counters.get("cells.retried", 0)
        + counters.get("cells.quarantined", 0)
        + counters.get("cells.resumed", 0)
        + counters.get("cache.corrupt", 0)
        + data.recovered_lines
    )
    if resilience:
        lines.append("resilience")
        lines.append(
            "  faults: %s"
            % (
                ", ".join(
                    "%s %s" % (kind, _fmt_count(count))
                    for kind, count in sorted(fault_counts.items())
                )
                or "none"
            )
        )
        lines.append(
            "  cells retried %s   quarantined %s   resumed %s   "
            "cache records quarantined %s   truncated lines recovered %d"
            % (
                _fmt_count(counters.get("cells.retried", 0)),
                _fmt_count(counters.get("cells.quarantined", 0)),
                _fmt_count(counters.get("cells.resumed", 0)),
                _fmt_count(counters.get("cache.corrupt", 0)),
                data.recovered_lines,
            )
        )

    lines.append("scheduler")
    lines.append(
        "  simulated runs %s   context switches %s   virtual time %.1f ms total"
        % (
            _fmt_count(counters.get("sched.runs", 0)),
            _fmt_count(counters.get("sched.context_switches", 0)),
            gauges.get("sched.virtual_time_ms_total", 0.0),
        )
    )

    cell_hist = histograms.get("harness.cell_wall_ms")
    if cell_hist and cell_hist["count"]:
        lines.append("harness cells")
        lines.append(
            "  %d cells   wall %.1f ms total   mean %.1f ms   min %.1f / max %.1f ms"
            % (
                cell_hist["count"],
                cell_hist["sum"],
                cell_hist["sum"] / cell_hist["count"],
                cell_hist["min"],
                cell_hist["max"],
            )
        )

    if data.coverage:
        from . import coverage as coverage_mod

        merged = coverage_mod.merge_coverage(data.coverage)
        total = merged["pairs_total"] or 1
        lines.append("coverage observatory (%d session(s))" % len(data.coverage))
        lines.append(
            "  pairs %d: delayed %d (%.0f%%) / pruned %d / planned-untested %d"
            "   injections %d   bugs found %d"
            % (
                merged["pairs_total"],
                merged["pairs_delayed"],
                100.0 * merged["pairs_delayed"] / total,
                merged["pairs_pruned"],
                merged["pairs_planned"],
                merged["injected_total"],
                merged["bugs_found"],
            )
        )
        coverage_problems = [
            "%s/%s: %s" % (rec.get("tool", "?"), rec.get("test", "?"), problem)
            for rec in data.coverage
            for problem in coverage_mod.reconcile_coverage(rec)
        ]
        if coverage_problems:
            lines.append("  COVERAGE RECONCILIATION: %d problem(s)" % len(coverage_problems))
            lines.extend("    " + p for p in coverage_problems[:10])
        else:
            lines.append("  coverage reconciles with engine counters ✓")
        lines.append("  full digest: repro obs coverage %s" % data.directory)

    if data.event_streams:
        lines.extend(_fuzz_section(data.event_streams))
        events_total = sum(len(s.events) for s in data.event_streams)
        recovered = sum(s.recovered for s in data.event_streams)
        lines.append("campaign events (%d stream(s))" % len(data.event_streams))
        lines.append(
            "  %d event(s)%s   status: repro campaign status %s   "
            "analytics: repro obs analytics %s"
            % (
                events_total,
                "   (%d torn line(s) recovered)" % recovered if recovered else "",
                data.directory,
                data.directory,
            )
        )

    if data.dossiers:
        lines.append("bug dossiers (%d)" % len(data.dossiers))
        for item in data.dossiers[:10]:
            payload = item["dossier"]
            report = payload.get("report", {})
            lines.append(
                "  %-38s %s @ %s  verified=%s"
                % (
                    item["file"],
                    report.get("error_type", "?"),
                    report.get("fault_location", "?"),
                    payload.get("verified", False),
                )
            )
        lines.append("  inspect one: repro obs dossier %s" % data.directory)

    problems = reconcile(data)
    lines.append("")
    if problems:
        lines.append("RECONCILIATION: %d problem(s)" % len(problems))
        lines.extend("  " + p for p in problems)
    else:
        lines.append("reconciliation: decision events match run summaries and counters ✓")

    if data.runs:
        lines.append("")
        lines.append("runs (slowest %d by wall time)" % min(max_runs, len(data.runs)))
        lines.append(
            "  %-8s %-28s %9s %10s %6s %6s %6s  %s"
            % ("kind", "test", "wall ms", "virt ms", "inj", "skip", "cand", "flags")
        )
        ranked = sorted(data.runs, key=lambda r: r.get("wall_ms", 0.0), reverse=True)
        for run in ranked[:max_runs]:
            skipped = (
                run.get("skipped_decay", 0)
                + run.get("skipped_interference", 0)
                + run.get("skipped_budget", 0)
            )
            flags = "".join(
                token
                for token, on in (
                    ("C", run.get("crashed")),
                    ("T", run.get("timed_out")),
                )
                if on
            )
            lines.append(
                "  %-8s %-28s %9.2f %10.2f %6d %6d %6d  %s"
                % (
                    run.get("kind", "?"),
                    str(run.get("test", "?"))[:28],
                    run.get("wall_ms", 0.0),
                    run.get("virtual_ms", 0.0),
                    run.get("injected", 0),
                    skipped,
                    run.get("candidates_final", 0),
                    flags,
                )
            )
    return "\n".join(lines)


def write_chrome_trace(data: ObsData, out_path: os.PathLike) -> int:
    """Write the Chrome ``trace_event`` view of the recorded virtual-time
    schedules; returns the number of trace events written."""
    trace = chrome_trace_events(data.runs)
    Path(out_path).write_text(json.dumps(trace, indent=1, sort_keys=True))
    return len(trace["traceEvents"])
