"""Campaign event consumption: live status, progress, cross-run analytics.

:mod:`repro.obs.eventbus` writes the campaign event stream; this module
reads it. Three consumers share one incremental fold
(:func:`apply_event` / :func:`fold_events` -> :class:`CampaignView`):

* ``repro campaign status <events>`` -- render a point-in-time view of
  a running (or finished) campaign: per-cell state, ETA from completed
  cell wall times, the detection funnel, and campaign health;
* ``--progress`` on experiment commands -- a :class:`ProgressRenderer`
  subscribed to the live bus, printing one status line per lifecycle
  event to stderr while the tables compute;
* ``repro obs analytics <dir>`` -- cross-run analytics: per-app /
  per-bug time-to-first-detection distributions, injection-skip
  taxonomy rollups from co-located telemetry, and a perf-regression
  tracker over ``BENCH_*.json`` history.

Determinism contract: the analytics sections are computed only from
deterministic event fields (virtual ``time_ms``, candidate-pair and
delay counts, runs-to-expose, matched flags), and the work-product
events (``prep``, ``detect_run``, ``detection``) are deduplicated by
their deterministic identity keys -- a retried or resumed cell re-runs
the same pure function and re-emits identical values, so its duplicate
events collapse. A chaos-interrupted, resumed campaign therefore
renders an analytics report identical to an uninterrupted run's.
Wall-clock fields feed only the live view (ETA, throughput), never
analytics.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from . import eventbus


# ----------------------------------------------------------------------
# Folding a stream into a campaign view
# ----------------------------------------------------------------------


@dataclass
class CellState:
    """The latest known state of one campaign cell."""

    cell: str
    unit: str = "?"
    status: str = "running"  # running | ok | quarantined | failed | resumed
    attempt: int = 1
    wall_s: float = 0.0
    retries: int = 0


@dataclass
class CampaignView:
    """Everything ``campaign status`` needs, folded from one stream."""

    events: int = 0
    campaigns: List[dict] = field(default_factory=list)
    finished: List[dict] = field(default_factory=list)
    cells_expected: int = 0
    cells: Dict[str, CellState] = field(default_factory=dict)
    retries: int = 0
    resumed: int = 0
    watchdog_kills: int = 0
    chaos_fires: int = 0
    checkpoints: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Work-product events, deduplicated by deterministic identity key.
    #: Values are whole events; a re-emitted duplicate (retry, resume,
    #: cold cache) overwrites with identical content.
    preps: Dict[Tuple, dict] = field(default_factory=dict)
    detect_runs: Dict[Tuple, dict] = field(default_factory=dict)
    detections: Dict[Tuple, dict] = field(default_factory=dict)
    fuzz: Dict[Tuple, dict] = field(default_factory=dict)
    #: Fleet plane (schema v2): executor lifecycle, the lease ledger
    #: and shared-store traffic. Deliberately absent from analytics --
    #: how work was divided is nondeterministic; what was computed is
    #: not.
    workers: Dict[str, dict] = field(default_factory=dict)
    heartbeats: int = 0
    lease_acquired: int = 0
    lease_released: int = 0
    lease_expired: int = 0
    lease_stolen: int = 0
    store_published: int = 0
    store_hits: int = 0
    store_corrupt: int = 0
    first_t: float = 0.0
    last_t: float = 0.0
    warnings: List[str] = field(default_factory=list)

    # -- derived -------------------------------------------------------

    @property
    def cells_done(self) -> int:
        return sum(1 for c in self.cells.values() if c.status != "running")

    @property
    def cells_running(self) -> List[CellState]:
        return [c for c in self.cells.values() if c.status == "running"]

    @property
    def cells_total(self) -> int:
        return max(self.cells_expected, len(self.cells))

    def by_status(self, status: str) -> int:
        return sum(1 for c in self.cells.values() if c.status == status)

    @property
    def cache_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def elapsed_s(self) -> float:
        return max(0.0, self.last_t - self.first_t)

    def eta_s(self) -> Optional[float]:
        """Seconds until done, from completed-cell wall times.

        Throughput-based: completed cells over elapsed wall time folds
        in parallelism and cache effects without knowing ``--jobs``.
        Returns None before the first cell completes (no basis yet).
        """
        done = self.cells_done
        remaining = self.cells_total - done
        if remaining <= 0:
            return 0.0
        if not done or self.elapsed_s <= 0:
            return None
        return remaining * (self.elapsed_s / done)

    # -- detection funnel (deterministic fields only) ------------------

    @property
    def pairs_candidates(self) -> int:
        """Candidate pairs discovered by preparation analysis (both the
        harness prep primitive and detection sessions' own plans)."""
        return (
            sum(int(e.get("pairs", 0)) for e in self.preps.values())
            + sum(int(e.get("pairs", 0)) for e in self.detections.values())
        )

    @property
    def delays_injected(self) -> int:
        return (
            sum(int(e.get("injected", 0)) for e in self.detect_runs.values())
            + sum(int(e.get("delays", 0)) for e in self.detections.values())
        )

    @property
    def pairs_observed(self) -> int:
        """Near-miss pairs observed during online detection runs."""
        return sum(int(e.get("pairs_observed", 0)) for e in self.detect_runs.values())

    @property
    def detect_crashes(self) -> int:
        return (
            sum(1 for e in self.detect_runs.values() if e.get("crashed"))
            + sum(int(e.get("crashes", 0)) for e in self.detections.values())
        )

    @property
    def detected(self) -> List[dict]:
        return [d for d in self.detections.values() if d.get("matched")]


def detection_key(event: dict) -> Tuple:
    """The deterministic identity of one detection attempt.

    A retried cell re-runs deterministically and re-emits its detection
    events with identical values; this key is what collapses them so
    chaos/resumed campaigns analyze identically to clean ones.
    """
    return (
        event.get("tool", "?"),
        event.get("bug", "?"),
        event.get("test", "?"),
        event.get("attempt", 0),
    )


def _identity(event: dict) -> Tuple:
    """Whole-event identity minus transport fields (seq, timestamp,
    writer). ``prep`` and ``detect_run`` events carry only deterministic
    work-product fields, so two emissions of the same computation (a
    retried cell, a resumed campaign's overlap) have equal identity and
    collapse, while genuinely distinct runs never do."""
    return tuple(
        sorted((k, str(v)) for k, v in event.items() if k not in ("seq", "t", "w"))
    )


def apply_event(view: CampaignView, event: dict) -> None:
    """Fold one event into ``view`` (shared by the offline loader and
    the live progress renderer, so their numbers always agree)."""
    view.events += 1
    stamp = float(event.get("t", 0.0))
    if stamp:
        if not view.first_t:
            view.first_t = stamp
        view.last_t = max(view.last_t, stamp)
    etype = event.get("type")
    if etype == "campaign_begin":
        view.campaigns.append(event)
    elif etype == "campaign_end":
        view.finished.append(event)
    elif etype == "fanout":
        view.cells_expected += int(event.get("cells", 0))
    elif etype == "cell_begin":
        cell = str(event.get("cell", "?"))
        state = view.cells.get(cell)
        if state is None:
            view.cells[cell] = CellState(
                cell=cell,
                unit=str(event.get("unit", "?")),
                attempt=int(event.get("attempt", 1)),
            )
        else:  # a retry re-enters the cell
            state.status = "running"
            state.attempt = int(event.get("attempt", state.attempt))
    elif etype == "cell_end":
        cell = str(event.get("cell", "?"))
        state = view.cells.setdefault(cell, CellState(cell=cell))
        state.status = str(event.get("status", "ok"))
        state.attempt = int(event.get("attempt", 1))
        state.wall_s = float(event.get("wall_s", 0.0))
    elif etype == "cell_retry":
        view.retries += 1
        cell = str(event.get("cell", "?"))
        view.cells.setdefault(cell, CellState(cell=cell)).retries += 1
    elif etype == "cell_resumed":
        view.resumed += 1
        cell = str(event.get("cell", "?"))
        view.cells.setdefault(cell, CellState(cell=cell)).status = "resumed"
    elif etype == "watchdog":
        view.watchdog_kills += 1
    elif etype == "fault":
        kind = str(event.get("kind", "?"))
        view.faults[kind] = view.faults.get(kind, 0) + 1
    elif etype == "chaos":
        view.chaos_fires += 1
    elif etype == "checkpoint":
        view.checkpoints += 1
    elif etype == "cache":
        if event.get("action") == "hit":
            view.cache_hits += 1
        else:
            view.cache_misses += 1
    elif etype == "prep":
        view.preps[_identity(event)] = event
    elif etype == "detect_run":
        view.detect_runs[_identity(event)] = event
    elif etype == "detection":
        view.detections[detection_key(event)] = event
    elif etype == "fuzz_workload":
        view.fuzz[_identity(event)] = event
    elif etype == "worker_begin":
        worker = str(event.get("worker", "?"))
        view.workers[worker] = {"role": event.get("role", "?"), "state": "running"}
    elif etype == "worker_end":
        worker = str(event.get("worker", "?"))
        state = view.workers.setdefault(worker, {"role": event.get("role", "?")})
        state["state"] = "done"
        state["executed"] = int(event.get("executed", 0))
        state["fetched"] = int(event.get("fetched", 0))
        state["stolen"] = int(event.get("stolen", 0))
        state["wall_s"] = float(event.get("wall_s", 0.0))
    elif etype == "heartbeat":
        view.heartbeats += 1
    elif etype == "lease_acquire":
        view.lease_acquired += 1
    elif etype == "lease_release":
        view.lease_released += 1
    elif etype == "lease_expire":
        view.lease_expired += 1
    elif etype == "lease_steal":
        view.lease_stolen += 1
    elif etype == "store":
        action = event.get("action")
        if action == "publish":
            view.store_published += 1
        elif action == "hit":
            view.store_hits += 1
        elif action == "corrupt":
            view.store_corrupt += 1
    elif etype not in eventbus.EVENT_TYPES:
        view.warnings.append("unknown event type %r" % etype)


def fold_events(events: Iterable[dict]) -> CampaignView:
    """One pass over a (possibly merged) stream -> :class:`CampaignView`."""
    view = CampaignView()
    for event in events:
        apply_event(view, event)
    return view


def load_view(path_or_dir: os.PathLike) -> Tuple[CampaignView, List[eventbus.EventStream]]:
    """Load and fold every stream under a path (file or directory)."""
    streams = eventbus.load_streams(path_or_dir)
    view = fold_events(eventbus.merge_events(streams))
    for stream in streams:
        view.warnings.extend(stream.warnings)
        view.warnings.extend(stream.parse_errors)
    return view, streams


# ----------------------------------------------------------------------
# Live status rendering
# ----------------------------------------------------------------------


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, (seconds % 3600) // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%.1fs" % seconds


def eta_text(view: CampaignView) -> str:
    """The ETA cell of the status line. A campaign with cells in flight
    but none completed has no throughput basis yet -- render an explicit
    "warming up" instead of a degenerate estimate (or a bare "--" that
    reads like the field is broken)."""
    if view.finished:
        return _fmt_eta(0.0)
    if view.cells_total and not view.cells_done:
        return "warming up"
    return _fmt_eta(view.eta_s())


def _bar(done: int, total: int, width: int = 24) -> str:
    total = max(total, 1)
    filled = int(width * min(done, total) / total)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_status(view: CampaignView, source: str = "", max_cells: int = 8) -> str:
    """The ``campaign status`` digest: progress, health, funnel, detections."""
    lines: List[str] = []
    header = "Campaign status"
    if source:
        header += " — %s" % source
    lines.append(header)
    for record in view.campaigns:
        lines.append(
            "  command: %s   seed %s   jobs %s"
            % (record.get("command", "?"), record.get("seed", "?"), record.get("jobs", "?"))
        )
    done, total = view.cells_done, view.cells_total
    pct = 100.0 * done / total if total else 0.0
    state = "finished" if view.finished else ("running" if total else "idle")
    lines.append(
        "  %s %d/%d cells (%.0f%%)   %s   elapsed %s   eta %s"
        % (
            _bar(done, total),
            done,
            total,
            pct,
            state,
            _fmt_eta(view.elapsed_s) if view.elapsed_s else "--",
            eta_text(view),
        )
    )
    lines.append("")
    lines.append("health")
    lines.append(
        "  ok %d   quarantined %d   failed %d   resumed %d   retries %d   "
        "watchdog kills %d   chaos fires %d   checkpoints %d"
        % (
            view.by_status("ok"),
            view.by_status("quarantined"),
            view.by_status("failed"),
            view.resumed,
            view.retries,
            view.watchdog_kills,
            view.chaos_fires,
            view.checkpoints,
        )
    )
    cache_total = view.cache_hits + view.cache_misses
    lines.append(
        "  cache: %d hits / %d misses (%.0f%% hit ratio)"
        % (view.cache_hits, view.cache_misses, 100.0 * view.cache_ratio)
        if cache_total
        else "  cache: no lookups recorded"
    )
    if view.faults:
        lines.append(
            "  faults: %s"
            % ", ".join("%s %d" % (k, n) for k, n in sorted(view.faults.items()))
        )
    if view.workers or view.lease_acquired:
        lines.append("")
        lines.append("fleet")
        running = sum(1 for w in view.workers.values() if w.get("state") == "running")
        lines.append(
            "  workers: %d joined (%d still running)   heartbeats %d"
            % (len(view.workers), running, view.heartbeats)
        )
        lines.append(
            "  leases: %d acquired + %d stolen / %d released + %d expired"
            % (view.lease_acquired, view.lease_stolen,
               view.lease_released, view.lease_expired)
        )
        lines.append(
            "  store: %d published   %d fetched   %d corrupt quarantined"
            % (view.store_published, view.store_hits, view.store_corrupt)
        )
        for name in sorted(view.workers):
            worker = view.workers[name]
            if worker.get("state") != "done":
                lines.append("    %-24s %-12s running" % (name[:24], worker.get("role", "?")))
            else:
                lines.append(
                    "    %-24s %-12s %d executed, %d fetched, %d stolen (%.1fs)"
                    % (name[:24], worker.get("role", "?"), worker.get("executed", 0),
                       worker.get("fetched", 0), worker.get("stolen", 0),
                       worker.get("wall_s", 0.0))
                )
    lines.append("")
    lines.append("detection funnel")
    lines.append(
        "  candidate pairs %d → delays injected %d → near-miss pairs %d → detected %d"
        % (
            view.pairs_candidates,
            view.delays_injected,
            view.pairs_observed,
            len(view.detected),
        )
    )
    if view.detect_runs:
        lines.append(
            "  online/planned detection runs %d (%d crashed)"
            % (len(view.detect_runs), view.detect_crashes)
        )
    if view.detected:
        lines.append("")
        lines.append("detections")
        for event in sorted(view.detected, key=detection_key):
            lines.append(
                "  %-10s %-12s %-24s attempt %d   %s run(s)   %.1f virtual ms"
                % (
                    event.get("bug", "?"),
                    event.get("tool", "?"),
                    str(event.get("test", "?"))[:24],
                    event.get("attempt", 0),
                    event.get("runs", "?"),
                    event.get("time_ms", 0.0),
                )
            )
    running = sorted(view.cells_running, key=lambda c: c.cell)
    if running and not view.finished:
        lines.append("")
        lines.append("in flight (%d)" % len(running))
        for cell in running[:max_cells]:
            lines.append(
                "  %-16s %-32s attempt %d%s"
                % (
                    cell.cell[:16],
                    cell.unit[:32],
                    cell.attempt,
                    "   (%d retries)" % cell.retries if cell.retries else "",
                )
            )
        if len(running) > max_cells:
            lines.append("  ... and %d more" % (len(running) - max_cells))
    if view.warnings:
        lines.append("")
        lines.append("warnings (%d)" % len(view.warnings))
        lines.extend("  " + w for w in view.warnings[:10])
    return "\n".join(lines)


class ProgressRenderer:
    """A live bus listener: one stderr line per lifecycle event.

    Intentionally line-oriented (no cursor control) so output survives
    ``tee``, CI logs, and interleaving with table prints. Folds events
    through the same :func:`apply_event` accounting the offline view
    uses, so the live numbers and ``campaign status`` agree.
    """

    #: Event types worth a line; high-frequency types (cache, prep,
    #: detect_run) only update counters silently.
    RENDERED = ("fanout", "cell_end", "cell_retry", "cell_resumed",
                "watchdog", "chaos", "detection", "campaign_end",
                "worker_begin", "worker_end", "lease_steal")

    def __init__(self, stream: TextIO):
        self.stream = stream
        self.view = CampaignView()

    def __call__(self, event: dict) -> None:
        apply_event(self.view, event)
        if event.get("type") in self.RENDERED:
            self._render(event)

    def _render(self, event: dict) -> None:
        view = self.view
        etype = event.get("type")
        prefix = "progress: %d/%d" % (view.cells_done, view.cells_total)
        if etype == "fanout":
            line = "%s  fanout %s: %s cells across %s job(s)" % (
                prefix, event.get("unit", "?"), event.get("cells", "?"), event.get("jobs", "?"))
        elif etype == "cell_end":
            line = "%s  cell %s %s (attempt %s, %.2fs)   eta %s" % (
                prefix, str(event.get("cell", "?"))[:12], event.get("status", "?"),
                event.get("attempt", 1), float(event.get("wall_s", 0.0)),
                eta_text(view))
        elif etype == "cell_retry":
            line = "%s  retry %s attempt %s after %s (backoff %.2fs)" % (
                prefix, str(event.get("cell", "?"))[:12], event.get("attempt", "?"),
                event.get("kind", "?"), float(event.get("backoff_s", 0.0)))
        elif etype == "cell_resumed":
            line = "%s  cell %s resumed from journal" % (
                prefix, str(event.get("cell", "?"))[:12])
        elif etype == "watchdog":
            line = "%s  watchdog killed %s after %ss" % (
                prefix, str(event.get("cell", "?"))[:12], event.get("deadline_s", "?"))
        elif etype == "chaos":
            line = "%s  chaos fired at %s" % (prefix, event.get("site", "?"))
        elif etype == "detection":
            verdict = "DETECTED" if event.get("matched") else "not detected"
            line = "%s  %s %s/%s attempt %s: %s" % (
                prefix, verdict, event.get("tool", "?"), event.get("bug", "?"),
                event.get("attempt", "?"),
                "%s run(s)" % event.get("runs", "?") if event.get("matched") else "exhausted")
        elif etype == "campaign_end":
            line = "%s  campaign finished in %.1fs (%d detection(s))" % (
                prefix, float(event.get("wall_s", 0.0)), len(view.detected))
        elif etype == "worker_begin":
            line = "%s  worker %s joined (%s)" % (
                prefix, str(event.get("worker", "?"))[:24], event.get("role", "?"))
        elif etype == "worker_end":
            line = "%s  worker %s left: %s executed, %s fetched, %s stolen" % (
                prefix, str(event.get("worker", "?"))[:24], event.get("executed", "?"),
                event.get("fetched", "?"), event.get("stolen", "?"))
        elif etype == "lease_steal":
            line = "%s  lease %s stolen from %s (attempt %s)" % (
                prefix, str(event.get("cell", "?"))[:12],
                str(event.get("victim", "?"))[:24], event.get("attempt", "?"))
        else:
            return
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except Exception:
            pass


def attach_progress(stream: TextIO) -> Optional[ProgressRenderer]:
    """Subscribe a progress renderer to the active bus, if any."""
    active = eventbus.bus()
    if active is None:
        return None
    renderer = ProgressRenderer(stream)
    active.add_listener(renderer)
    return renderer


# ----------------------------------------------------------------------
# Cross-run analytics
# ----------------------------------------------------------------------


def _quantiles(values: Sequence[float]) -> Dict[str, float]:
    ranked = sorted(values)
    n = len(ranked)
    if not n:
        return {}

    def q(fraction: float) -> float:
        return ranked[min(n - 1, int(fraction * n))]

    return {
        "n": n,
        "min": ranked[0],
        "p50": q(0.50),
        "p90": q(0.90),
        "max": ranked[-1],
    }


def detection_analytics(view: CampaignView) -> Dict[str, Any]:
    """Per-app / per-bug time-to-first-detection, from detection events.

    TTFD for one (tool, bug, test) is the cumulative deterministic
    virtual ``time_ms`` of its detection attempts up to and including
    the first matched one; targets never matched report ``None``. Only
    deterministic fields enter, so chaos/resumed streams analyze
    identically to clean ones (the dedup in :func:`apply_event` already
    collapsed re-run attempts).
    """
    by_target: Dict[Tuple[str, str, str], List[dict]] = {}
    for event in view.detections.values():
        key = (str(event.get("tool", "?")), str(event.get("bug", "?")),
               str(event.get("test", "?")))
        by_target.setdefault(key, []).append(event)
    rows: List[dict] = []
    for (tool, bug, test), attempts in sorted(by_target.items()):
        attempts.sort(key=lambda e: e.get("attempt", 0))
        cumulative_ms = 0.0
        runs = 0
        ttfd_ms: Optional[float] = None
        expose_attempt: Optional[int] = None
        for event in attempts:
            cumulative_ms += float(event.get("time_ms", 0.0))
            runs += int(event.get("session_runs", 0))
            if event.get("matched") and ttfd_ms is None:
                ttfd_ms = round(cumulative_ms, 3)
                expose_attempt = event.get("attempt", 0)
        app = test.split(":", 1)[0] if ":" in test else "?"
        rows.append({
            "tool": tool, "bug": bug, "app": app, "test": test,
            "attempts": len(attempts), "runs": runs,
            "detected": ttfd_ms is not None,
            "ttfd_ms": ttfd_ms, "expose_attempt": expose_attempt,
        })
    per_app: Dict[str, List[float]] = {}
    per_bug: Dict[str, List[float]] = {}
    for row in rows:
        if row["ttfd_ms"] is not None:
            per_app.setdefault(row["app"], []).append(row["ttfd_ms"])
            per_bug.setdefault(row["bug"], []).append(row["ttfd_ms"])
    return {
        "rows": rows,
        "detected": sum(1 for r in rows if r["detected"]),
        "targets": len(rows),
        "ttfd_by_app": {app: _quantiles(v) for app, v in sorted(per_app.items())},
        "ttfd_by_bug": {bug: _quantiles(v) for bug, v in sorted(per_bug.items())},
    }


def fuzz_analytics(view: CampaignView) -> Dict[str, Any]:
    """Detection-rate-vs-topology rollup of the generated-workload
    (``fuzz_workload``) events. Every folded field is deterministic, and
    the whole-event dedup already collapsed retried/resumed/cache-hit
    re-emissions, so one logical workload counts exactly once."""
    buckets: Dict[str, dict] = {}
    for event in view.fuzz.values():
        name = str(event.get("topology", "?"))
        bucket = buckets.setdefault(
            name,
            {"topology": name, "workloads": 0, "planted": 0,
             "detectable": 0, "found": 0, "runs": 0, "failed": 0},
        )
        bucket["workloads"] += 1
        bucket["planted"] += int(event.get("planted", 0))
        bucket["detectable"] += int(event.get("detectable", 0))
        bucket["found"] += int(event.get("found", 0))
        bucket["runs"] += int(event.get("runs", 0))
        if not event.get("ok", True):
            bucket["failed"] += 1
    rows = []
    for name in sorted(buckets):
        bucket = buckets[name]
        bucket["detection_rate"] = (
            round(bucket["found"] / bucket["detectable"], 4)
            if bucket["detectable"] else 1.0
        )
        rows.append(bucket)
    return {
        "rows": rows,
        "workloads": sum(b["workloads"] for b in rows),
        "failed": sum(b["failed"] for b in rows),
    }


#: BENCH_*.json timing keys end in ``_s``; a newer snapshot slower than
#: its predecessor by more than this fraction is flagged.
PERF_REGRESSION_THRESHOLD = 0.25


def perf_tracker(bench_paths: Sequence[os.PathLike],
                 threshold: float = PERF_REGRESSION_THRESHOLD) -> Dict[str, Any]:
    """Ingest ``BENCH_*.json`` history and flag deltas beyond budget.

    Two signal classes: (a) a snapshot's own verdict (``within_budget``
    / ``rows_identical`` false) and (b) timing drift -- for benchmarks
    with multiple snapshots (same ``benchmark`` name, lexicographic
    path order = history order), any shared top-level ``*_s`` timing
    growing more than ``threshold`` between consecutive snapshots.
    """
    history: Dict[str, List[Tuple[str, dict]]] = {}
    problems: List[str] = []
    loaded = 0
    for path in bench_paths:
        target = Path(path)
        try:
            payload = json.loads(target.read_text())
        except (OSError, ValueError) as exc:
            problems.append("%s: unreadable bench snapshot (%s)" % (target.name, exc))
            continue
        loaded += 1
        name = str(payload.get("benchmark", target.stem))
        history.setdefault(name, []).append((target.name, payload))
        if payload.get("within_budget") is False:
            problems.append("%s: outside its own overhead budget" % target.name)
        if payload.get("rows_identical") is False:
            problems.append("%s: parallel/cached rows diverged" % target.name)
    regressions: List[dict] = []
    for name, snapshots in sorted(history.items()):
        snapshots.sort(key=lambda item: item[0])
        for (prev_name, prev), (cur_name, cur) in zip(snapshots, snapshots[1:]):
            for key in sorted(set(prev) & set(cur)):
                if not key.endswith("_s"):
                    continue
                before, after = prev.get(key), cur.get(key)
                if not isinstance(before, (int, float)) or not isinstance(after, (int, float)):
                    continue
                if before > 0 and (after - before) / before > threshold:
                    regressions.append({
                        "benchmark": name, "key": key,
                        "before": before, "after": after,
                        "delta_pct": round(100.0 * (after - before) / before, 1),
                        "from": prev_name, "to": cur_name,
                    })
    return {
        "snapshots": loaded,
        "benchmarks": sorted(history),
        "budget_problems": problems,
        "regressions": regressions,
        "threshold_pct": round(100.0 * threshold, 1),
    }


def skip_taxonomy(obs_data: Any) -> Dict[str, int]:
    """Injection-skip rollup out of a loaded obs directory's counters."""
    counters = (obs_data.metrics or {}).get("counters", {})
    from .telemetry import SKIP_REASONS

    rollup = {reason: counters.get("inject.skipped.%s" % reason, 0)
              for reason in SKIP_REASONS}
    rollup["injected"] = counters.get("inject.injected", 0)
    rollup["considered"] = counters.get("inject.considered", 0)
    return rollup


def render_analytics(view: CampaignView,
                     obs_data: Any = None,
                     bench_paths: Sequence[os.PathLike] = (),
                     source: str = "") -> str:
    """The ``repro obs analytics`` report.

    Section order is fixed and every section renders deterministically
    from its inputs; with events-only input (no telemetry, no bench
    history) the report is a pure function of the deduplicated event
    stream -- the identity the chaos/resume acceptance test pins.
    """
    lines: List[str] = []
    header = "Campaign analytics"
    if source:
        header += " — %s" % source
    lines.append(header)
    analytics = detection_analytics(view)
    lines.append(
        "  targets %d   detected %d   detection events %d (deduplicated)"
        % (analytics["targets"], analytics["detected"], len(view.detections))
    )
    lines.append("")
    lines.append("detection funnel (deduplicated, deterministic)")
    lines.append(
        "  candidate pairs %d → delays injected %d → near-miss pairs %d → detected %d"
        % (view.pairs_candidates, view.delays_injected,
           view.pairs_observed, analytics["detected"])
    )
    if analytics["rows"]:
        lines.append("")
        lines.append("time to first detection (virtual ms, deterministic)")
        lines.append("  %-10s %-12s %-14s %8s %6s %12s" %
                     ("bug", "tool", "app", "attempts", "runs", "ttfd"))
        for row in analytics["rows"]:
            lines.append(
                "  %-10s %-12s %-14s %8d %6d %12s"
                % (row["bug"], row["tool"], row["app"], row["attempts"], row["runs"],
                   "%.1f" % row["ttfd_ms"] if row["detected"] else "—"))
        for label, table in (("per app", analytics["ttfd_by_app"]),
                             ("per bug", analytics["ttfd_by_bug"])):
            if table:
                lines.append("  ttfd %s:" % label)
                for name, stats in table.items():
                    lines.append(
                        "    %-14s n=%d  min %.1f  p50 %.1f  p90 %.1f  max %.1f"
                        % (name, stats["n"], stats["min"], stats["p50"],
                           stats["p90"], stats["max"]))
    if view.fuzz:
        generated = fuzz_analytics(view)
        lines.append("")
        lines.append("generated workloads (deduplicated, deterministic)")
        lines.append(
            "  %d workload(s) oracle-verified   %d failing"
            % (generated["workloads"], generated["failed"]))
        lines.append("  %-10s %9s %8s %11s %6s %6s %9s" %
                     ("topology", "workloads", "planted", "detectable",
                      "found", "runs", "rate"))
        for bucket in generated["rows"]:
            lines.append(
                "  %-10s %9d %8d %11d %6d %6d %8.1f%%"
                % (bucket["topology"], bucket["workloads"], bucket["planted"],
                   bucket["detectable"], bucket["found"], bucket["runs"],
                   100.0 * bucket["detection_rate"]))
    lines.append("")
    lines.append("injection-skip taxonomy")
    if obs_data is not None and (obs_data.metrics or {}).get("counters"):
        rollup = skip_taxonomy(obs_data)
        total_skips = sum(v for k, v in rollup.items()
                          if k not in ("injected", "considered"))
        lines.append(
            "  considered %d   injected %d   skipped %d (decay %d, interference %d, budget %d)"
            % (rollup["considered"], rollup["injected"], total_skips,
               rollup.get("decay", 0), rollup.get("interference", 0),
               rollup.get("budget", 0)))
    else:
        lines.append("  no co-located telemetry (run with --obs-dir for the rollup)")
    lines.append("")
    lines.append("perf-regression tracker")
    if bench_paths:
        perf = perf_tracker(bench_paths)
        lines.append(
            "  %d snapshot(s) across %d benchmark(s)   drift threshold %.0f%%"
            % (perf["snapshots"], len(perf["benchmarks"]), perf["threshold_pct"]))
        for problem in perf["budget_problems"]:
            lines.append("  BUDGET: %s" % problem)
        for reg in perf["regressions"]:
            lines.append(
                "  REGRESSION: %s %s %.4fs → %.4fs (+%.1f%%) [%s → %s]"
                % (reg["benchmark"], reg["key"], reg["before"], reg["after"],
                   reg["delta_pct"], reg["from"], reg["to"]))
        if not perf["budget_problems"] and not perf["regressions"]:
            lines.append("  all snapshots within budget, no drift beyond threshold ✓")
    else:
        lines.append("  no BENCH_*.json history supplied")
    return "\n".join(lines)
