"""Campaign event bus: a durable, schema-versioned JSONL event stream.

Per-run telemetry (:mod:`repro.obs.telemetry`) and forensic dossiers
(:mod:`repro.obs.dossier`) explain what a single run did *after* it
finished; this module is the campaign-level plane above them: an
append-only stream of campaign/cell/attempt lifecycle, cache, fault,
chaos, watchdog, detection and checkpoint events, written as it
happens. It is what ``campaign status`` renders live, what
``campaign merge`` combines across workers, and what ``obs analytics``
mines across runs.

Durability follows the conventions the telemetry flusher and the
supervisor journal established:

* **fork-safe** -- one ``events-<pid>-<token>.jsonl`` file per writing
  process; a forked worker drops the parent's buffered events (they are
  the parent's to write) and opens its own stream, so streams never
  interleave within a file;
* **batched with hard points** -- events buffer up to
  :attr:`EventBus.FLUSH_EVERY` records; pool workers hard-flush per
  cell (they can die without atexit) and the CLI flushes at
  end-of-command, exactly like telemetry;
* **torn-tail tolerant** -- a process killed mid-append commits at most
  one partial final line; readers recover (skip and count) an
  unterminated, undecodable tail instead of raising, and the
  reconciliation gates tolerate exactly that many missing events.

Every stream begins with a ``meta`` line carrying the schema version
(:data:`EVENT_SCHEMA_VERSION`) and the writer identity; readers surface
a version mismatch as a warning rather than guessing at field
semantics.

The bus is **off by default**: :func:`bus` returns None and every
guarded emission site pays one ``is None`` check
(``benchmarks/bench_obs.py`` keeps that budget honest). It activates
alongside telemetry (``--obs-dir`` / ``WAFFLE_OBS_DIR``), standalone
via ``WAFFLE_EVENTS_DIR``, or in-memory only (no directory) for
``--progress`` rendering without an artifact.

Events are strictly observational: nothing reads them back into the
simulation, so campaigns stay bit-identical with the bus on or off.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Bump when an event's field semantics change; readers warn on
#: mismatch instead of misinterpreting old streams. Version 2 added
#: the fleet vocabulary (worker lifecycle, lease protocol, artifact
#: store); every v1 event kept its exact shape, so v1 streams stay
#: readable (see :data:`SUPPORTED_EVENT_VERSIONS`).
EVENT_SCHEMA_VERSION = 2

#: Schema versions readers accept without warning. v1 is a strict
#: subset of v2 (no field changed meaning), so old streams fold, merge
#: and render exactly as they did when written.
SUPPORTED_EVENT_VERSIONS = (1, 2)

#: Environment variable enabling the bus standalone (without telemetry)
#: and propagating it to ``--jobs`` pool workers.
EVENTS_DIR_ENV = "WAFFLE_EVENTS_DIR"

#: Stream file naming convention (distinct from ``telemetry-*.jsonl``).
STREAM_GLOB = "events-*.jsonl"

#: The event vocabulary. ``meta`` opens every stream; everything else
#: is campaign traffic. Renderers ignore unknown types (forward
#: compatibility); the CI gate flags them (schema discipline).
EVENT_TYPES = (
    "meta",
    "campaign_begin",    # one CLI campaign command started
    "campaign_end",      # ... and finished (ok, wall_s)
    "fanout",            # an experiment fanned N cells out (unit, cells, jobs)
    "cell_begin",        # one cell started executing (cell, unit)
    "cell_end",          # ... finalized (status ok|quarantined|failed, attempt, wall_s)
    "cell_retry",        # a retryable fault scheduled another attempt
    "cell_resumed",      # satisfied from the campaign journal without running
    "watchdog",          # a cell blew its wall-clock deadline and was killed
    "fault",             # one classified fault (kind, error, cell, attempt)
    "chaos",             # a chaos site fired (site, key)
    "checkpoint",        # the campaign journal finalized a cell
    "cache",             # run-cache lookup (action hit|miss, kind)
    "prep",              # a preparation run was analyzed (test, pairs, sites)
    "detect_run",        # one detection run finished (test, injected, crashed)
    "detection",         # one detection attempt concluded (bug, tool, matched, runs)
    "fuzz_workload",     # one generated workload oracle-verified (seed, topology, ok)
    # -- v2: fleet vocabulary (lease-based work stealing, shared store) --
    "worker_begin",      # a fleet executor joined the campaign (worker, role, pid)
    "worker_end",        # ... and left (executed, fetched, stolen, wall_s)
    "heartbeat",         # a lease owner refreshed its deadline (cell, worker, beat)
    "lease_acquire",     # a worker claimed a cell exclusively (cell, worker, attempt)
    "lease_release",     # ... and released it after finalizing (cell, worker)
    "lease_expire",      # a lease outlived its heartbeat deadline (cell, worker)
    "lease_steal",       # an expired lease was reclaimed by another worker
    "store",             # shared artifact store traffic (action publish|hit|corrupt)
)


@dataclass
class StreamMeta:
    """The identity line opening one event stream."""

    writer: str = "?"
    version: Optional[int] = None
    pid: int = 0
    started_unix: float = 0.0


@dataclass
class EventStream:
    """One parsed ``events-*.jsonl`` file."""

    path: str
    meta: StreamMeta
    events: List[dict] = field(default_factory=list)
    #: Torn tail lines recovered (skipped); the reconciliation tolerance.
    recovered: int = 0
    warnings: List[str] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)


class EventBus:
    """Process-local campaign event writer.

    With a directory, events land in ``events-<pid>-<token>.jsonl``;
    without one the bus is in-memory only (listeners still fire, which
    is all ``--progress`` needs). Listeners are called synchronously
    with each record -- they must never raise into the emitting path.
    """

    #: Buffered records before :meth:`maybe_flush` actually writes.
    #: Event traffic is orders of magnitude sparser than telemetry's
    #: per-decision records, so a smaller threshold keeps the live
    #: ``campaign status`` view fresher at negligible cost.
    FLUSH_EVERY = 256

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory is not None else None
        self.started_unix = time.time()
        self.writer = "%d-%d" % (os.getpid(), int(self.started_unix * 1000) % 1_000_000_000)
        self.path: Optional[Path] = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path = self.directory / ("events-%s.jsonl" % self.writer)
        self._seq = 0
        self._listeners: List[Callable[[dict], None]] = []
        # Fleet heartbeat threads emit concurrently with the worker's
        # main thread; a lock keeps seq assignment and the buffer-swap
        # in flush() coherent. Uncontended acquisition is ~100ns --
        # noise against the bus's per-event JSON encode.
        self._lock = threading.Lock()
        self._pending: List[dict] = [
            {
                "type": "meta",
                "v": EVENT_SCHEMA_VERSION,
                "writer": self.writer,
                "pid": os.getpid(),
                "started_unix": round(self.started_unix, 3),
            }
        ]

    # -- Emission ------------------------------------------------------

    def emit(self, etype: str, **fields: Any) -> dict:
        """Append one event (timestamped, sequence-numbered) and notify
        listeners. Returns the record (tests inspect it)."""
        with self._lock:
            self._seq += 1
            record: Dict[str, Any] = {"type": etype, "seq": self._seq, "t": round(time.time(), 6)}
            record.update(fields)
            self._pending.append(record)
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:
                pass  # a renderer bug must never take down the campaign
        return record

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        self._listeners.append(listener)

    # -- Flushing ------------------------------------------------------

    def maybe_flush(self) -> None:
        if len(self._pending) >= self.FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        """Append buffered events as whole JSONL lines (one buffer, one
        write -- the same torn-tail discipline as telemetry: a kill can
        cut at most the final line)."""
        with self._lock:
            if self.path is None or not self._pending:
                self._pending = self._pending if self.path is None else []
                return
            records = self._pending
            self._pending = []
        dumps = json.dumps
        with open(self.path, "a") as fp:
            fp.write("".join(dumps(r, separators=(",", ":")) + "\n" for r in records))


# ----------------------------------------------------------------------
# Process-global activation (the same model as obs.session)
# ----------------------------------------------------------------------

_bus: Optional[EventBus] = None


def bus() -> Optional[EventBus]:
    """The active event bus, or None (the zero-cost disabled path)."""
    return _bus


def active() -> bool:
    return _bus is not None


def emit(etype: str, **fields: Any) -> None:
    """Module-level convenience: emit when a bus is active, else no-op."""
    if _bus is not None:
        _bus.emit(etype, **fields)


def configure(directory: Optional[os.PathLike] = None) -> EventBus:
    """Activate the bus, flushing any previous one first.

    ``directory=None`` gives an in-memory bus (listeners only) for
    ``--progress`` without a durable artifact.
    """
    global _bus
    if _bus is not None:
        _bus.flush()
    _bus = EventBus(directory)
    _wire_chaos()
    return _bus


def disable() -> None:
    global _bus
    if _bus is not None:
        _bus.flush()
    _bus = None


def flush() -> None:
    if _bus is not None:
        _bus.flush()


def _configure_from_env() -> None:
    directory = os.environ.get(EVENTS_DIR_ENV)
    if directory:
        configure(directory)


def _reset_after_fork() -> None:
    # A forked worker inherits the parent's bus -- buffered events and
    # file token included. The buffered events are the parent's to
    # write; the child gets a fresh stream keyed by its own pid (or no
    # bus at all when the parent's was in-memory only: a worker has no
    # terminal to render progress on).
    global _bus
    if _bus is None:
        return
    directory = _bus.directory
    _bus = None
    if directory is not None:
        _bus = EventBus(directory)
        _wire_chaos()


def _on_chaos_fire(site: str, key: str, attempt: int) -> None:
    """Chaos-harness callback: record every injected fault's firing."""
    if _bus is not None:
        _bus.emit("chaos", site=site, key=str(key)[:48], attempt=attempt)


def _wire_chaos() -> None:
    """Register the chaos callback on the fault taxonomy when the
    harness is loaded. Via ``sys.modules`` rather than an import:
    :mod:`repro.harness.faults` is a leaf the obs layer must not drag
    in (or cycle with) at import time. The supervisor re-wires on
    activation for the case where chaos loads after the bus.
    """
    faults_mod = sys.modules.get("repro.harness.faults")
    if faults_mod is not None and hasattr(faults_mod, "on_chaos_fire"):
        faults_mod.on_chaos_fire = _on_chaos_fire


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


# ----------------------------------------------------------------------
# Reading streams back
# ----------------------------------------------------------------------


def read_stream(path: os.PathLike) -> EventStream:
    """Parse one event stream, recovering a torn tail.

    The recovery posture matches :func:`repro.obs.report.load_obs_dir`:
    an unterminated, undecodable final line is the artifact of a killed
    writer -- counted and skipped, never raised; an undecodable
    *committed* line (newline-terminated, or not the tail) is a parse
    error. A missing or version-skewed ``meta`` line is a warning.
    """
    target = Path(path)
    stream = EventStream(path=str(target), meta=StreamMeta())
    try:
        text = target.read_text()
    except OSError as exc:
        stream.warnings.append("%s: unreadable event stream (%s)" % (target.name, exc))
        return stream
    lines = text.splitlines()
    if not lines:
        stream.warnings.append("%s: empty event stream" % target.name)
        return stream
    truncated_tail = not text.endswith("\n")
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if truncated_tail and line_no == len(lines):
                stream.recovered += 1
                stream.warnings.append(
                    "%s: truncated final line recovered [corrupt_record] "
                    "(killed worker?)" % target.name
                )
            else:
                stream.parse_errors.append("%s:%d: %s" % (target.name, line_no, exc))
            continue
        if record.get("type") == "meta":
            stream.meta = StreamMeta(
                writer=str(record.get("writer", "?")),
                version=record.get("v"),
                pid=record.get("pid", 0),
                started_unix=record.get("started_unix", 0.0),
            )
            if record.get("v") not in SUPPORTED_EVENT_VERSIONS:
                stream.warnings.append(
                    "%s: event schema version %r not in supported %s -- "
                    "fields may be misread"
                    % (target.name, record.get("v"), list(SUPPORTED_EVENT_VERSIONS))
                )
            continue
        stream.events.append(record)
    if stream.meta.version is None and stream.events:
        stream.warnings.append("%s: event stream has no meta line" % target.name)
    return stream


def stream_paths(path_or_dir: os.PathLike) -> List[Path]:
    """The event stream files under ``path_or_dir`` (a single stream
    file, a merged file, or a directory of ``events-*.jsonl``)."""
    root = Path(path_or_dir)
    if root.is_dir():
        return sorted(root.glob(STREAM_GLOB))
    if root.exists():
        return [root]
    return []


def load_streams(path_or_dir: os.PathLike) -> List[EventStream]:
    return [read_stream(path) for path in stream_paths(path_or_dir)]


# ----------------------------------------------------------------------
# Merging worker streams
# ----------------------------------------------------------------------


def _monotonic_events(stream: EventStream) -> List[dict]:
    """One stream's events, annotated with the writer identity and with
    timestamps reconciled to be monotonic *within the writer*.

    A stepped clock can make a writer's own wall times run backwards;
    its sequence numbers are the ground truth for its internal order,
    so timestamps are clamped forward (``t = max(t, prev t)``) rather
    than letting a skewed clock reorder a single worker's history.
    """
    out: List[dict] = []
    previous = float("-inf")
    for event in sorted(stream.events, key=lambda e: e.get("seq", 0)):
        record = dict(event)
        record["w"] = stream.meta.writer
        stamp = float(record.get("t", 0.0))
        if stamp < previous:
            stamp = previous
            record["t"] = stamp
        previous = stamp
        out.append(record)
    return out


def merge_events(streams: Sequence[EventStream]) -> List[dict]:
    """Combine worker streams into one coherent, deterministic timeline.

    Total order: (reconciled timestamp, writer id, per-writer seq).
    The key is unique and independent of input order, so merging the
    same streams in any order yields an identical timeline -- the
    property the merge-determinism test pins byte-for-byte.
    """
    merged: List[dict] = []
    for stream in streams:
        merged.extend(_monotonic_events(stream))
    merged.sort(key=lambda e: (float(e.get("t", 0.0)), str(e.get("w", "")), e.get("seq", 0)))
    return merged


def write_merged(streams: Sequence[EventStream], out_path: os.PathLike) -> int:
    """Write one merged stream; returns the number of events written.

    The merged file opens with its own ``meta`` line naming the source
    writers (sorted -- input order must not leak into the bytes) and is
    readable by every stream consumer, :func:`read_stream` included.
    """
    merged = merge_events(streams)
    meta = {
        "type": "meta",
        "v": EVENT_SCHEMA_VERSION,
        "writer": "merged",
        "merged_from": sorted(s.meta.writer for s in streams),
    }
    target = Path(out_path)
    dumps = json.dumps
    body = "".join(
        dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        for record in [meta] + merged
    )
    tmp = target.with_name(target.name + ".tmp.%d" % os.getpid())
    tmp.write_text(body)
    os.replace(tmp, target)
    return len(merged)


def counts_by_type(events: Iterable[dict]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for event in events:
        key = event.get("type", "?")
        out[key] = out.get(key, 0) + 1
    return out
