"""Bug dossiers: everything needed to understand and replay one bug.

When a detection run manifests a MemOrder bug, the detector assembles a
*dossier* from the flight recorder (:mod:`repro.obs.flightrec`) and the
engine/candidate state of the crashing run:

* full candidate-pair provenance for every matched pair -- the
  near-miss gap history that created it, the planned ``alpha * len``
  delay, the decay probability it ended the run with, and every pruning
  verdict recorded (parent-child with vector clocks, happens-before
  inference windows, retirement);
* a virtual-time swimlane of all threads with injected delays and the
  faulting access highlighted (ASCII and HTML renderings);
* a **minimal reproducing schedule**: the per-site, per-occurrence
  delays the run actually injected, greedily minimized by actual
  replay through the deterministic simulator, so
  ``repro replay <dossier.json>`` re-manifests the same error at the
  same location.

Determinism contract: the simulator draws all op-cost jitter from one
RNG seeded with the run's sim seed; the injection engine uses its own
RNG. Replaying the same workload with the same sim seed, the same
per-op overhead, and the same delays at the same per-site occurrence
indices therefore reproduces the interleaving exactly -- which is also
why minimization *must* be verified by replay rather than assumed.

This module is imported directly (``from repro.obs import dossier``),
never via ``repro.obs.__init__`` -- it pulls in ``core``/``sim`` and
would otherwise create an import cycle.
"""

from __future__ import annotations

import html as _html
import itertools as _itertools
import os as _os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..sim.api import Simulation
from ..sim.instrument import AccessType, InstrumentationHook, PendingAccess
from ..core import persistence
from ..core.reports import BugReport
from . import flightrec

#: Schedule modes: which access classes the per-site occurrence counter
#: ticks on. Must match the counting filter of the hook that captured
#: the schedule (``_BaseInjectionHook.before_access``).
SCHEDULE_MODES = ("memorder", "tsv")

#: Default replay budget for greedy schedule minimization: one
#: verification replay plus at most this many drop-one trials.
DEFAULT_MAX_REPLAYS = 24


# ---------------------------------------------------------------------------
# Deterministic schedule replay
# ---------------------------------------------------------------------------


class ScheduleReplayHook(InstrumentationHook):
    """Re-inject a recorded schedule by (site, nth-occurrence) key.

    The capturing hook counted every access that reached
    ``engine.decide`` -- all MemOrder accesses (``memorder`` mode) or
    all unsafe calls (``tsv`` mode). This hook counts the same stream,
    so occurrence index *n* here is the same dynamic operation as
    occurrence *n* during detection, regardless of which sites are in
    the schedule.
    """

    def __init__(
        self,
        delays: List[dict],
        mode: str = "memorder",
        per_op_overhead_ms: float = 0.0,
    ):
        if mode not in SCHEDULE_MODES:
            raise ValueError("unknown schedule mode %r" % (mode,))
        self.mode = mode
        self.per_op_overhead_ms = per_op_overhead_ms
        self._delays: Dict[str, Dict[int, float]] = {}
        for entry in delays:
            by_site = self._delays.setdefault(str(entry["site"]), {})
            by_site[int(entry["nth"])] = float(entry["len_ms"])
        self._seen: Dict[str, int] = {}
        self.delays_injected: int = 0
        self.total_delay_ms: float = 0.0

    def before_access(self, pending: PendingAccess) -> float:
        if self.mode == "tsv":
            if pending.access_type is not AccessType.UNSAFE_CALL:
                return 0.0
        elif not pending.access_type.is_memorder:
            return 0.0
        site = pending.location.site
        nth = self._seen.get(site, 0)
        self._seen[site] = nth + 1
        by_site = self._delays.get(site)
        if by_site is None:
            return 0.0
        length = by_site.get(nth, 0.0)
        if length > 0.0:
            self.delays_injected += 1
            self.total_delay_ms += length
        return length


@dataclass
class ReplayOutcome:
    """What one deterministic schedule replay observed."""

    crashed: bool
    error_type: Optional[str]
    fault_site: Optional[str]
    fault_time_ms: float
    virtual_time_ms: float
    timed_out: bool
    delays_injected: int

    def matches(self, error_type: str, fault_site: str) -> bool:
        """Same manifestation: same exception class, same static site."""
        return self.error_type == error_type and (self.fault_site or "") == (
            fault_site or ""
        )


def replay_schedule(
    build: Callable[[Simulation], Generator],
    schedule: dict,
    delays: Optional[List[dict]] = None,
    name: str = "replay",
) -> ReplayOutcome:
    """Re-execute a workload under a recorded schedule, deterministically.

    ``schedule`` is the dossier's schedule envelope (``sim_seed``,
    ``time_limit_ms``, ``inject_overhead_ms``, ``mode``, ``delays``);
    ``delays`` overrides the delay list (used by minimization trials).
    The flight recorder is suspended for the duration so verification
    replays do not pollute the ring being snapshotted.
    """
    with flightrec.suspended():
        hook = ScheduleReplayHook(
            delays if delays is not None else schedule.get("delays", []),
            mode=schedule.get("mode", "memorder"),
            per_op_overhead_ms=float(schedule.get("inject_overhead_ms", 0.0)),
        )
        sim = Simulation(
            seed=int(schedule["sim_seed"]),
            hook=hook,
            time_limit_ms=float(schedule.get("time_limit_ms", 600_000.0)),
            stop_on_failure=True,
            name=name,
        )
        result = sim.run(build(sim), name="main")
    error_type: Optional[str] = None
    fault_site: Optional[str] = None
    fault_time = 0.0
    if result.failures:
        thread, error = result.failures[0]
        error_type = type(error).__name__
        location = getattr(error, "location", None)
        fault_site = location.site if location is not None else None
        fault_time = thread.end_time if thread.end_time is not None else 0.0
    return ReplayOutcome(
        crashed=result.crashed,
        error_type=error_type,
        fault_site=fault_site,
        fault_time_ms=fault_time,
        virtual_time_ms=result.virtual_time,
        timed_out=result.timed_out,
        delays_injected=hook.delays_injected,
    )


def minimize_schedule(
    build: Callable[[Simulation], Generator],
    schedule: dict,
    error_type: str,
    fault_site: str,
    max_replays: int = DEFAULT_MAX_REPLAYS,
) -> Tuple[List[dict], int, bool]:
    """Greedy drop-one minimization verified by actual replay.

    Returns ``(delays, replays_used, verified)``. Invariant: whenever
    ``verified`` is True, the returned delay list has been replayed and
    reproduced the target manifestation; trials that stopped reproducing
    are discarded, so the result is never an unverified guess.
    """
    current = list(schedule.get("delays", []))
    replays = 0

    def reproduces(trial: List[dict]) -> bool:
        nonlocal replays
        replays += 1
        outcome = replay_schedule(build, schedule, delays=trial)
        return outcome.matches(error_type, fault_site)

    if not reproduces(current):
        # The full schedule itself does not replay (should not happen
        # under the determinism contract); report it unverified rather
        # than shrinking from a broken baseline.
        return current, replays, False

    index = 0
    while index < len(current) and replays < max_replays:
        trial = current[:index] + current[index + 1 :]
        if reproduces(trial):
            current = trial  # keep the drop; same index now names the next entry
        else:
            index += 1
    return current, replays, True


# ---------------------------------------------------------------------------
# The dossier
# ---------------------------------------------------------------------------


@dataclass
class BugDossier:
    """A self-contained, JSON-serializable account of one manifested bug."""

    tool: str
    workload: str
    report: BugReport
    #: Config snapshot relevant to reproduction and provenance.
    config: Dict[str, Any] = field(default_factory=dict)
    #: Replay envelope: sim_seed, time_limit_ms, inject_overhead_ms,
    #: mode, delays=[{site, nth, len_ms}] -- the *minimal* schedule.
    schedule: Dict[str, Any] = field(default_factory=dict)
    #: The full schedule as captured, before minimization.
    schedule_original: List[dict] = field(default_factory=list)
    minimized: bool = False
    verified: bool = False
    replays_used: int = 0
    #: Per matched pair: gap history, planned delay, decay state.
    provenance: List[dict] = field(default_factory=list)
    #: Pruning verdicts retained in the flight ring (whole session).
    prunes: List[dict] = field(default_factory=list)
    #: Injection decisions (inject/skip) of the crashing run.
    decisions: List[dict] = field(default_factory=list)
    #: Interference conflicts for each matched delay site.
    interference: Dict[str, List[str]] = field(default_factory=dict)
    #: Thread/delay/fault timeline backing the swimlane renderings.
    swimlane: Dict[str, Any] = field(default_factory=dict)
    #: Raw flight events of the crashing run, plus ring-loss accounting.
    flight_events: List[dict] = field(default_factory=list)
    flight_dropped: int = 0

    @property
    def fault_site(self) -> str:
        return self.report.fault_site

    @property
    def error_type(self) -> str:
        return self.report.error_type

    def to_dict(self) -> dict:
        return {
            "tool": self.tool,
            "workload": self.workload,
            "report": self.report.to_dict(),
            "config": dict(self.config),
            "schedule": dict(self.schedule),
            "schedule_original": list(self.schedule_original),
            "minimized": self.minimized,
            "verified": self.verified,
            "replays_used": self.replays_used,
            "provenance": list(self.provenance),
            "prunes": list(self.prunes),
            "decisions": list(self.decisions),
            "interference": {k: list(v) for k, v in self.interference.items()},
            "swimlane": dict(self.swimlane),
            "flight_events": list(self.flight_events),
            "flight_dropped": self.flight_dropped,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BugDossier":
        return cls(
            tool=payload["tool"],
            workload=payload["workload"],
            report=BugReport.from_dict(payload["report"]),
            config=dict(payload.get("config", {})),
            schedule=dict(payload.get("schedule", {})),
            schedule_original=list(payload.get("schedule_original", [])),
            minimized=payload.get("minimized", False),
            verified=payload.get("verified", False),
            replays_used=payload.get("replays_used", 0),
            provenance=list(payload.get("provenance", [])),
            prunes=list(payload.get("prunes", [])),
            decisions=list(payload.get("decisions", [])),
            interference={
                k: list(v) for k, v in payload.get("interference", {}).items()
            },
            swimlane=dict(payload.get("swimlane", {})),
            flight_events=list(payload.get("flight_events", [])),
            flight_dropped=payload.get("flight_dropped", 0),
        )


def save_dossier(dossier: BugDossier, path) -> None:
    persistence.save_record({"dossier": dossier.to_dict()}, path)


def load_dossier(path) -> BugDossier:
    return BugDossier.from_dict(persistence.load_record(path)["dossier"])


def assemble_dossier(
    tool: str,
    workload: str,
    report: BugReport,
    hook,
    config,
    sim_seed: int,
    recorder: Optional[flightrec.FlightRecorder] = None,
    build: Optional[Callable[[Simulation], Generator]] = None,
    minimize: bool = True,
    max_replays: int = DEFAULT_MAX_REPLAYS,
) -> BugDossier:
    """Build a dossier for ``report`` from the crashing run's state.

    ``hook`` is the injection hook of the crashing run (its engine,
    candidate set, ledger, threads and captured schedule are mined for
    provenance); ``build`` is the workload's generator factory -- when
    given, the embedded schedule is verified and greedily minimized by
    actual replay, otherwise it is stored as captured (unverified).
    """
    engine = hook.engine
    candidates = engine.candidates
    mode = "tsv" if getattr(hook, "tsv_mode", False) else "memorder"

    schedule_original = [dict(entry) for entry in hook.injection_schedule]
    schedule = {
        "workload": workload,
        "sim_seed": sim_seed,
        "time_limit_ms": config.run_time_limit_ms,
        "inject_overhead_ms": config.inject_overhead_ms,
        "mode": mode,
        "delays": [
            {"site": e["site"], "nth": e["nth"], "len_ms": e["len_ms"]}
            for e in schedule_original
        ],
    }

    minimized = False
    verified = False
    replays_used = 0
    if build is not None and schedule["delays"]:
        delays, replays_used, verified = minimize_schedule(
            build,
            schedule,
            report.error_type,
            report.fault_site,
            max_replays=max_replays,
        )
        if verified:
            minimized = len(delays) < len(schedule["delays"])
            schedule["delays"] = delays

    provenance = []
    for pair in report.matched_pairs:
        site = pair.delay_location.site
        observations = candidates.observations(pair)
        provenance.append(
            {
                "kind": pair.kind.value,
                "delay_site": site,
                "other_site": pair.other_location.site,
                "gaps_ms": [round(o.gap_ms, 4) for o in observations],
                "max_gap_ms": round(candidates.max_gap(pair), 4),
                "planned_delay_ms": round(engine.delay_policy.length_for(site), 4),
                "decay_probability": round(engine.decay.probability(site), 4),
                "in_candidate_set": pair in candidates,
            }
        )

    interference: Dict[str, List[str]] = {}
    if engine.interference is not None:
        for pair in report.matched_pairs:
            site = pair.delay_location.site
            if site not in interference:
                interference[site] = sorted(engine.interference.conflicts_of(site))

    threads = sorted(
        (
            {
                "tid": t.tid,
                "name": t.name,
                "start": round(t.spawn_time, 4),
                "end": round(t.end_time, 4) if t.end_time is not None else None,
            }
            for t in hook._threads.values()
        ),
        key=lambda entry: entry["tid"],
    )
    swimlane = {
        "threads": threads,
        "delays": [
            {
                "site": d.site,
                "tid": d.thread_id,
                "start": round(d.start, 4),
                "end": round(d.end, 4),
            }
            for d in engine.ledger.history
        ],
        "fault": {
            "site": report.fault_site or None,
            "t": round(report.fault_time_ms, 4),
            "thread": report.thread_name,
        },
    }

    prunes: List[dict] = []
    decisions: List[dict] = []
    flight_events: List[dict] = []
    flight_dropped = 0
    if recorder is not None:
        prunes = recorder.events("prune_parent_child") + recorder.events("prune_hb")
        prunes += [e for e in recorder.events("pair_removed") if e.get("reason")]
        flight_events = recorder.events_for_run(recorder.run_seq)
        decisions = [e for e in flight_events if e["k"] in ("inject", "skip")]
        flight_dropped = recorder.dropped

    config_snapshot = {
        "seed": config.seed,
        "alpha": config.alpha,
        "decay_lambda": config.decay_lambda,
        "near_miss_window_ms": config.near_miss_window_ms,
        "min_delay_ms": config.min_delay_ms,
        "fixed_delay_ms": config.fixed_delay_ms,
        "run_time_limit_ms": config.run_time_limit_ms,
        "inject_overhead_ms": config.inject_overhead_ms,
        "interference_control": config.interference_control,
    }

    return BugDossier(
        tool=tool,
        workload=workload,
        report=report,
        config=config_snapshot,
        schedule=schedule,
        schedule_original=schedule_original,
        minimized=minimized,
        verified=verified,
        replays_used=replays_used,
        provenance=provenance,
        prunes=prunes,
        decisions=decisions,
        interference=interference,
        swimlane=swimlane,
        flight_events=flight_events,
        flight_dropped=flight_dropped,
    )


def replay_dossier(
    dossier: BugDossier, build: Callable[[Simulation], Generator]
) -> Tuple[ReplayOutcome, bool]:
    """Replay a dossier's minimal schedule; returns (outcome, reproduced)."""
    outcome = replay_schedule(build, dossier.schedule, name="replay:%s" % dossier.workload)
    return outcome, outcome.matches(dossier.error_type, dossier.fault_site)


# ---------------------------------------------------------------------------
# Swimlane renderings
# ---------------------------------------------------------------------------


def _timeline_bounds(swimlane: dict) -> Tuple[float, float]:
    t_max = swimlane.get("fault", {}).get("t") or 0.0
    for entry in swimlane.get("threads", ()):
        if entry.get("end") is not None:
            t_max = max(t_max, entry["end"])
    for d in swimlane.get("delays", ()):
        t_max = max(t_max, d["end"])
    return 0.0, max(t_max, 1e-9)


def render_swimlane(dossier: BugDossier, width: int = 72) -> str:
    """ASCII virtual-time swimlane: one lane per thread.

    ``-`` thread alive, ``#`` injected delay in progress, ``X`` the
    faulting access, space before spawn / after termination.
    """
    swimlane = dossier.swimlane
    threads = swimlane.get("threads", [])
    if not threads:
        return "(no thread timeline recorded)"
    t0, t1 = _timeline_bounds(swimlane)
    span = t1 - t0

    def column(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) / span * (width - 1))))

    delays_by_tid: Dict[int, List[dict]] = {}
    for d in swimlane.get("delays", ()):
        delays_by_tid.setdefault(d["tid"], []).append(d)
    fault = swimlane.get("fault", {})
    label_width = max(len(t["name"] or str(t["tid"])) for t in threads)
    label_width = max(label_width, len("virtual ms"))

    lines = [
        "%s |%s|" % (
            "virtual ms".rjust(label_width),
            ("0" + " " * width)[: width - len("%.1f" % t1)] + "%.1f" % t1,
        )
    ]
    for entry in threads:
        lane = [" "] * width
        start = column(entry["start"])
        end = column(entry["end"]) if entry["end"] is not None else width - 1
        for i in range(start, end + 1):
            lane[i] = "-"
        for d in delays_by_tid.get(entry["tid"], ()):
            for i in range(column(d["start"]), column(d["end"]) + 1):
                lane[i] = "#"
        name = entry["name"] or str(entry["tid"])
        if fault.get("thread") == entry["name"] and fault.get("t") is not None:
            lane[column(fault["t"])] = "X"
        lines.append("%s |%s|" % (name.rjust(label_width), "".join(lane)))
    legend = "%s   - alive   # injected delay   X fault (%s at %s)" % (
        " " * label_width,
        fault.get("site") or "?",
        "t=%.2fms" % fault.get("t", 0.0),
    )
    lines.append(legend)
    return "\n".join(lines)


def render_swimlane_html(dossier: BugDossier) -> str:
    """Standalone HTML swimlane (same data, proportional layout)."""
    swimlane = dossier.swimlane
    threads = swimlane.get("threads", [])
    t0, t1 = _timeline_bounds(swimlane)
    span = t1 - t0

    def pct(t: float) -> float:
        return (t - t0) / span * 100.0

    delays_by_tid: Dict[int, List[dict]] = {}
    for d in swimlane.get("delays", ()):
        delays_by_tid.setdefault(d["tid"], []).append(d)
    fault = swimlane.get("fault", {})

    rows = []
    for entry in threads:
        end = entry["end"] if entry["end"] is not None else t1
        bars = [
            '<div class="life" style="left:%.2f%%;width:%.2f%%"></div>'
            % (pct(entry["start"]), max(0.5, pct(end) - pct(entry["start"])))
        ]
        for d in delays_by_tid.get(entry["tid"], ()):
            bars.append(
                '<div class="delay" title="%s [%.2f, %.2f]ms" '
                'style="left:%.2f%%;width:%.2f%%"></div>'
                % (
                    _html.escape(d["site"]),
                    d["start"],
                    d["end"],
                    pct(d["start"]),
                    max(0.5, pct(d["end"]) - pct(d["start"])),
                )
            )
        if fault.get("thread") == entry["name"] and fault.get("t") is not None:
            bars.append(
                '<div class="fault" title="%s at t=%.2fms" style="left:%.2f%%"></div>'
                % (_html.escape(fault.get("site") or "?"), fault["t"], pct(fault["t"]))
            )
        rows.append(
            '<div class="row"><span class="name">%s</span>'
            '<div class="lane">%s</div></div>'
            % (_html.escape(entry["name"] or str(entry["tid"])), "".join(bars))
        )

    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>%s: %s</title><style>"
        "body{font:13px monospace;background:#fff;color:#222;margin:1em}"
        ".row{display:flex;align-items:center;margin:2px 0}"
        ".name{width:12em;text-align:right;padding-right:.8em}"
        ".lane{position:relative;flex:1;height:16px;background:#f4f4f4}"
        ".life{position:absolute;top:6px;height:4px;background:#9ab}"
        ".delay{position:absolute;top:2px;height:12px;background:#e6a23c}"
        ".fault{position:absolute;top:0;width:3px;height:16px;background:#d22}"
        "</style></head><body><h3>%s &mdash; %s on %s (%s)</h3>%s"
        "<p>orange = injected delay, red = faulting access "
        "(t axis: 0 &ndash; %.2f virtual ms)</p></body></html>"
        % (
            _html.escape(dossier.tool),
            _html.escape(dossier.workload),
            _html.escape(dossier.tool),
            _html.escape(dossier.error_type),
            _html.escape(dossier.fault_site or "?"),
            _html.escape(dossier.workload),
            "".join(rows),
            t1,
        )
    )


def render_dossier(dossier: BugDossier) -> str:
    """Human-readable digest: bug, provenance, schedule, swimlane."""
    out: List[str] = []
    report = dossier.report
    out.append("=" * 72)
    out.append(
        "BUG DOSSIER  %s :: %s" % (dossier.tool, dossier.workload)
    )
    out.append("=" * 72)
    out.append(
        "%s on ref %r at %s (thread %s, t=%.2fms, run %d)"
        % (
            report.error_type,
            report.ref_name,
            report.fault_site or "?",
            report.thread_name,
            report.fault_time_ms,
            report.run_index,
        )
    )
    out.append(
        "delays injected in crashing run: %d; delay-induced: %s"
        % (report.delays_injected, report.delay_induced)
    )

    out.append("")
    out.append("-- candidate-pair provenance " + "-" * 42)
    if not dossier.provenance:
        out.append("  (no matched pairs)")
    for entry in dossier.provenance:
        gaps = entry["gaps_ms"]
        out.append(
            "  %s  delay@%s vs %s" % (entry["kind"], entry["delay_site"], entry["other_site"])
        )
        out.append(
            "    near-miss gaps: %s (max %.2fms) -> planned delay %.2fms; "
            "decay p=%.2f%s"
            % (
                ", ".join("%.2f" % g for g in gaps[:8]) + ("..." if len(gaps) > 8 else ""),
                entry["max_gap_ms"],
                entry["planned_delay_ms"],
                entry["decay_probability"],
                "" if entry["in_candidate_set"] else " (since removed from S)",
            )
        )
        conflicts = dossier.interference.get(entry["delay_site"])
        if conflicts:
            out.append("    interference conflicts: %s" % ", ".join(conflicts))

    if dossier.prunes:
        out.append("")
        out.append("-- pruning verdicts " + "-" * 51)
        for event in dossier.prunes[:16]:
            if event["k"] == "prune_parent_child":
                out.append(
                    "  t=%8.2f  parent-child: delay@%s vs %s (vc %s <= %s)"
                    % (
                        event["t"],
                        event["delay_site"],
                        event["other_site"],
                        event.get("vc_earlier", {}),
                        event.get("vc_later", {}),
                    )
                )
            elif event["k"] == "prune_hb":
                out.append(
                    "  t=%8.2f  hb-inference: delay@%s vs %s (window %s)"
                    % (event["t"], event["delay_site"], event["other_site"], event.get("window"))
                )
            else:
                out.append(
                    "  pair removed: %s delay@%s vs %s (%s)"
                    % (
                        event.get("kind"),
                        event.get("delay_site"),
                        event.get("other_site"),
                        event.get("reason") or "untagged",
                    )
                )
        if len(dossier.prunes) > 16:
            out.append("  ... and %d more" % (len(dossier.prunes) - 16))

    out.append("")
    out.append("-- minimal reproducing schedule " + "-" * 39)
    delays = dossier.schedule.get("delays", [])
    out.append(
        "  sim_seed=%s  mode=%s  %d delay(s) (%d captured); minimized=%s verified=%s"
        % (
            dossier.schedule.get("sim_seed"),
            dossier.schedule.get("mode"),
            len(delays),
            len(dossier.schedule_original),
            dossier.minimized,
            dossier.verified,
        )
    )
    for entry in delays:
        out.append(
            "    occurrence #%d of %s -> sleep %.2fms"
            % (entry["nth"], entry["site"], entry["len_ms"])
        )
    out.append("  replay with: repro replay <dossier.json>")

    out.append("")
    out.append("-- virtual-time swimlane " + "-" * 46)
    out.append(render_swimlane(dossier))
    if dossier.flight_dropped:
        out.append(
            "(flight ring evicted %d events this session; oldest provenance lost)"
            % dossier.flight_dropped
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Schema validation (scripts/check_obs.py)
# ---------------------------------------------------------------------------

_REQUIRED_TOP = (
    "tool",
    "workload",
    "report",
    "config",
    "schedule",
    "verified",
    "provenance",
    "swimlane",
)


def validate_dossier_dict(payload: dict) -> List[str]:
    """Structural checks for a serialized dossier; returns problems."""
    problems: List[str] = []
    for key in _REQUIRED_TOP:
        if key not in payload:
            problems.append("missing key %r" % key)
    report = payload.get("report")
    if not isinstance(report, dict):
        problems.append("report is not an object")
    else:
        for key in ("error_type", "fault_location", "workload", "tool"):
            if key not in report:
                problems.append("report missing %r" % key)
    schedule = payload.get("schedule")
    if not isinstance(schedule, dict):
        problems.append("schedule is not an object")
    else:
        if "sim_seed" not in schedule:
            problems.append("schedule missing 'sim_seed'")
        if schedule.get("mode") not in SCHEDULE_MODES:
            problems.append("schedule mode %r unknown" % (schedule.get("mode"),))
        for index, entry in enumerate(schedule.get("delays", [])):
            for key in ("site", "nth", "len_ms"):
                if key not in entry:
                    problems.append("schedule delay %d missing %r" % (index, key))
    swimlane = payload.get("swimlane")
    if isinstance(swimlane, dict):
        if "threads" not in swimlane:
            problems.append("swimlane missing 'threads'")
        if "fault" not in swimlane:
            problems.append("swimlane missing 'fault'")
    else:
        problems.append("swimlane is not an object")
    for index, event in enumerate(payload.get("flight_events", [])):
        if not isinstance(event, dict) or "k" not in event or "seq" not in event:
            problems.append("flight event %d malformed" % index)
        elif event["k"] not in flightrec.EVENT_KINDS:
            problems.append("flight event %d unknown kind %r" % (index, event["k"]))
    return problems


_file_seq = _itertools.count()


def dossier_filename(dossier: BugDossier, index: Optional[int] = None) -> str:
    """Collision-resistant file name (pid + per-process sequence)."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in dossier.workload
    )
    return "dossier-%s-%s-run%d-%d-%d.json" % (
        dossier.tool,
        safe,
        dossier.report.run_index,
        _os.getpid(),
        next(_file_seq) if index is None else index,
    )


def write_dossier(dossier: BugDossier, directory) -> "Path":
    """Persist a dossier into an obs directory; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / dossier_filename(dossier)
    save_dossier(dossier, path)
    return path
