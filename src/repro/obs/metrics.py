"""Lightweight metrics primitives: counters, gauges, histograms.

The registry is the numeric half of the run-telemetry subsystem
(:mod:`repro.obs`). Design constraints, in order:

1. **Zero cost when telemetry is disabled.** Instrumented code holds a
   reference to the active :class:`~repro.obs.telemetry.TelemetrySession`
   (or None); with no session the hot paths never touch this module.
   For call sites that want an instrument unconditionally, the shared
   :data:`NULL_COUNTER` / :data:`NULL_GAUGE` / :data:`NULL_HISTOGRAM`
   singletons provide allocation-free no-ops.
2. **Cheap when enabled.** An increment is one attribute add on a
   ``__slots__`` object; histograms use a precomputed bucket scan.
3. **Process-local.** The harness fans experiment cells out over a
   process pool; each worker owns its own registry and flushes it to
   the obs directory, and :mod:`repro.obs.report` merges the snapshots
   (counters/histograms sum, gauges keep the latest value).

Metric names are dotted strings (``inject.skipped.decay``); the
canonical name list lives in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (milliseconds-oriented).
DEFAULT_BUCKETS: Tuple[float, ...] = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 10_000.0)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (e.g. the virtual time of the latest run)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket distribution with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets) if buckets else DEFAULT_BUCKETS
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation within the bucket holding the target rank;
        the observed min/max clamp the first and overflow buckets, so
        the estimate can never leave the observed value range. Error is
        bounded by the width of one bucket.
        """
        return bucket_percentile(
            self.buckets, self.bucket_counts, self.count, self.min, self.max, q
        )


def bucket_percentile(
    buckets: Sequence[float],
    bucket_counts: Sequence[int],
    count: int,
    minimum: Optional[float],
    maximum: Optional[float],
    q: float,
) -> float:
    """Quantile estimate over cumulative-bucket data (shared by live
    :class:`Histogram` instances and the merged snapshot dicts that
    ``repro obs report`` / the dashboard aggregate across processes)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile fraction must be in [0, 1], got %r" % q)
    if not count:
        return 0.0
    lo_clamp = minimum if minimum is not None else 0.0
    hi_clamp = maximum if maximum is not None else (buckets[-1] if buckets else 0.0)
    rank = q * count
    cumulative = 0
    lower = lo_clamp
    bounds = list(buckets) + [hi_clamp]
    for index, bound in enumerate(bounds):
        in_bucket = bucket_counts[index]
        if in_bucket:
            upper = min(bound, hi_clamp)
            base = max(lower, lo_clamp)
            if upper < base:
                upper = base
            if cumulative + in_bucket >= rank:
                fraction = (rank - cumulative) / in_bucket
                fraction = max(0.0, min(1.0, fraction))
                return base + (upper - base) * fraction
            cumulative += in_bucket
        lower = bound
    return hi_clamp


def snapshot_percentile(histogram: dict, q: float) -> float:
    """:func:`bucket_percentile` over one merged-snapshot histogram dict
    (the ``{"count", "sum", "min", "max", "buckets", "bucket_counts"}``
    shape :meth:`MetricsRegistry.snapshot` / :func:`merge_snapshots`
    produce)."""
    return bucket_percentile(
        histogram.get("buckets", ()),
        histogram.get("bucket_counts", ()),
        int(histogram.get("count", 0)),
        histogram.get("min"),
        histogram.get("max"),
        q,
    )


class _NullCounter:
    __slots__ = ()

    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    name = "null"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0


#: Shared no-op instruments: safe to hand out from a disabled registry
#: without allocating anything per call site.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name -> instrument map with create-or-return semantics.

    A disabled registry (``enabled=False``) hands back the shared null
    singletons, so code can bind instruments once at construction time
    and stay no-op without re-checking a flag.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument's current state."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "buckets": list(h.buckets),
                    "bucket_counts": list(h.bucket_counts),
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-process snapshots: counters and histograms sum, gauges
    keep the last non-default value seen (processes report independent
    instants; "latest wins" is the only coherent cross-process gauge)."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "buckets": list(hist["buckets"]),
                    "bucket_counts": list(hist["bucket_counts"]),
                }
                continue
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
            for bound_key in ("min", "max"):
                values = [v for v in (merged[bound_key], hist[bound_key]) if v is not None]
                if bound_key == "min":
                    merged[bound_key] = min(values) if values else None
                else:
                    merged[bound_key] = max(values) if values else None
            if merged["buckets"] == hist["buckets"]:
                merged["bucket_counts"] = [
                    a + b for a, b in zip(merged["bucket_counts"], hist["bucket_counts"])
                ]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
