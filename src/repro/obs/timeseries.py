"""Append-only detection-quality time series (``timeseries.jsonl``).

One row per campaign, appended by ``fuzz --dashboard`` / ``obs
dashboard`` and charted by ``obs trend``: the detection funnel, the
ground-truth quality bands, the skip taxonomy, and the benchmark
timings the 25%-drift tracker watches. Rows are schema-versioned like
the event bus (``v`` on every row, a leading ``meta`` line naming the
writer) so a reader from a future schema can refuse cleanly instead of
misparsing, and loading tolerates a torn tail the same way: a final
partial line -- the one crash/ENOSPC artifact an append-only file can
have -- is dropped with a recovery note, never a crash.

Unlike the dashboard and the OpenMetrics export (deterministic by
construction), the time series is *history*: rows carry a wall-clock
timestamp, because "when did quality drift" is the question it exists
to answer.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

TIMESERIES_SCHEMA_VERSION = 1

TIMESERIES_NAME = "timeseries.jsonl"

#: Fields every data row must carry (validate_row / check_obs).
REQUIRED_FIELDS = ("v", "type", "t", "label")


def build_row(
    view: Any = None,
    quality: Optional[dict] = None,
    bench_paths: Sequence[Any] = (),
    label: str = "campaign",
    t: Optional[float] = None,
) -> dict:
    """One quality/perf row. ``t`` is injectable for tests; everything
    else is folded from the same deduplicated sources the dashboard
    uses, so a row re-built from the same campaign is identical up to
    its timestamp."""
    from . import campaign as campaign_mod

    row: dict = {
        "v": TIMESERIES_SCHEMA_VERSION,
        "type": "quality",
        "t": round(time.time(), 3) if t is None else round(float(t), 3),
        "label": label,
    }
    if view is not None:
        row["funnel"] = {
            "candidates": view.pairs_candidates,
            "injected": view.delays_injected,
            "observed": view.pairs_observed,
            "detected": len(view.detected),
        }
        row["cells"] = {"total": view.cells_total, "done": view.cells_done}
        row["ops"] = {
            "retries": view.retries,
            "chaos_fires": view.chaos_fires,
            "cache_hits": view.cache_hits,
            "cache_misses": view.cache_misses,
        }
    if quality:
        curve = quality.get("curve") or {}
        if curve:
            row["bands"] = curve.get("bands", {})
            row["bugs"] = {"planted": curve.get("records", 0),
                           "found": curve.get("found", 0)}
        rollup = quality.get("rollup")
        if rollup:
            row["budget"] = {
                "injected": rollup["injected"],
                "delay_ms": rollup["delay_ms"],
                "skipped": rollup["skipped"],
                "counterfactual_sites": rollup["counterfactual_sites"],
            }
    if bench_paths:
        tracker = campaign_mod.perf_tracker(list(bench_paths))
        timings = {}
        for path in bench_paths:
            try:
                payload = json.loads(Path(path).read_text())
            except (OSError, ValueError):
                continue
            name = str(payload.get("benchmark", Path(path).stem))
            for key, value in sorted(payload.items()):
                if key.endswith("_s") and isinstance(value, (int, float)):
                    timings["%s.%s" % (name, key)] = round(float(value), 6)
        row["bench"] = {
            "snapshots": tracker["snapshots"],
            "regressions": len(tracker["regressions"]),
            "budget_problems": len(tracker["budget_problems"]),
            "timings": timings,
        }
    return row


def append_row(path: Any, row: dict) -> Path:
    """Append one row, writing the schema-versioned meta line first on
    a fresh file. Single ``write`` of complete lines -- same append
    discipline as the event bus, so concurrent writers interleave at
    line granularity at worst."""
    target = Path(path)
    if target.is_dir():
        target = target / TIMESERIES_NAME
    chunks: List[str] = []
    if not target.exists() or target.stat().st_size == 0:
        chunks.append(json.dumps({
            "v": TIMESERIES_SCHEMA_VERSION,
            "type": "meta",
            "writer": "repro.obs.timeseries",
        }, sort_keys=True))
    chunks.append(json.dumps(row, sort_keys=True))
    with open(target, "a") as handle:
        handle.write("\n".join(chunks) + "\n")
    return target


def load_series(path: Any) -> Tuple[List[dict], List[str]]:
    """``(rows, warnings)``: data rows in file order, with torn-tail
    recovery and future-schema refusal per row."""
    target = Path(path)
    if target.is_dir():
        target = target / TIMESERIES_NAME
    rows: List[dict] = []
    warnings: List[str] = []
    if not target.exists():
        return rows, warnings
    text = target.read_text()
    lines = text.splitlines()
    truncated_tail = bool(lines) and not text.endswith("\n")
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if truncated_tail and line_no == len(lines):
                warnings.append("%s: recovered from torn tail line" % target.name)
            else:
                warnings.append("%s:%d: unparseable line" % (target.name, line_no))
            continue
        if int(record.get("v", 0)) > TIMESERIES_SCHEMA_VERSION:
            warnings.append(
                "%s:%d: schema v%s is newer than supported v%d; skipped"
                % (target.name, line_no, record.get("v"), TIMESERIES_SCHEMA_VERSION)
            )
            continue
        if record.get("type") == "meta":
            continue
        problems = validate_row(record)
        if problems:
            warnings.append("%s:%d: %s" % (target.name, line_no, "; ".join(problems)))
            continue
        rows.append(record)
    return rows, warnings


def validate_row(row: dict) -> List[str]:
    """Schema problems in one data row (empty when clean)."""
    problems: List[str] = []
    for field in REQUIRED_FIELDS:
        if field not in row:
            problems.append("missing field %r" % field)
    if row.get("type") not in ("quality",):
        problems.append("unknown row type %r" % row.get("type"))
    if "t" in row and not isinstance(row["t"], (int, float)):
        problems.append("non-numeric timestamp")
    for section in ("funnel", "cells", "ops", "bands", "budget", "bench"):
        if section in row and not isinstance(row[section], dict):
            problems.append("section %r is not an object" % section)
    return problems


# ----------------------------------------------------------------------
# `obs trend` rendering
# ----------------------------------------------------------------------

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _spark(values: Sequence[Optional[float]]) -> str:
    present = [v for v in values if v is not None]
    if not present:
        return "(no data)"
    lo, hi = min(present), max(present)
    span = (hi - lo) or 1.0
    out = []
    for value in values:
        if value is None:
            out.append("·")
            continue
        index = int((value - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[max(1, index)] if hi > lo or value else _BLOCKS[1])
    return "".join(out)


def _band_rate(row: dict, band: str) -> Optional[float]:
    stats = (row.get("bands") or {}).get(band)
    if not stats:
        return None
    return stats.get("rate")


def render_trend(rows: Sequence[dict], limit: int = 40) -> str:
    """ASCII trend over the most recent ``limit`` rows: detection rates
    per ground-truth band, funnel detections, and benchmark timings."""
    lines = ["detection-quality trend"]
    if not rows:
        lines.append("  (no rows; run `repro fuzz --dashboard` to record one)")
        return "\n".join(lines)
    window = list(rows[-limit:])
    lines.append("  rows: %d (showing last %d)" % (len(rows), len(window)))

    detectable = [_band_rate(r, "detectable") for r in window]
    undetectable = [_band_rate(r, "undetectable") for r in window]
    detected = [float((r.get("funnel") or {}).get("detected", 0)) for r in window]
    lines.append("  detectable-band rate    %s  latest=%s"
                 % (_spark(detectable), _fmt_latest(detectable)))
    lines.append("  undetectable-band rate  %s  latest=%s"
                 % (_spark(undetectable), _fmt_latest(undetectable)))
    lines.append("  detections              %s  latest=%s"
                 % (_spark(detected), _fmt_latest(detected)))

    timing_keys: List[str] = []
    for row in window:
        for key in (row.get("bench") or {}).get("timings", {}):
            if key not in timing_keys:
                timing_keys.append(key)
    for key in sorted(timing_keys):
        series = [
            (r.get("bench") or {}).get("timings", {}).get(key) for r in window
        ]
        lines.append("  %-22s  %s  latest=%s"
                     % (key[:22], _spark(series), _fmt_latest(series)))
    regressions = sum(int((r.get("bench") or {}).get("regressions", 0)) for r in window)
    if regressions:
        lines.append("  WARNING: %d benchmark regression(s) beyond the drift "
                     "threshold in this window" % regressions)
    problems = sum(
        int((r.get("bench") or {}).get("budget_problems", 0)) for r in window
    )
    if problems:
        lines.append("  WARNING: %d benchmark budget problem(s) in this window"
                     % problems)
    return "\n".join(lines)


def _fmt_latest(series: Sequence[Optional[float]]) -> str:
    for value in reversed(series):
        if value is not None:
            if float(value).is_integer():
                return "%d" % int(value)
            return "%.4g" % value
    return "-"
