"""Self-contained campaign dashboard (single HTML file, inline SVG).

``render_dashboard`` turns the deduplicated campaign view, the
ground-truth quality joins (:mod:`repro.obs.quality`), the merged
telemetry snapshot, and the quality time series into one HTML document
with **no external assets**: styles inline, charts as inline SVG, data
tables beside every chart so nothing is color-alone. Sections render
their headings even when their data source is absent -- an empty
section is a census of what the campaign did not produce, and the
stable structure is what the CI smoke test greps for.

Determinism is a feature, not an accident: the document carries no
timestamps, hostnames, or source paths; every iteration is over sorted
keys; all numbers come from deduplicated or ground-truth-reconciled
sources. Re-rendering the same campaign -- across ``--jobs`` fan-out or
happens-before engines -- yields a byte-identical file (a golden test
pins this).

Palette (validated categorical/sequential/status sets): series colors
follow the entity in fixed slot order, magnitude uses a single-hue
ramp, status colors ship with an icon + label.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import snapshot_percentile

# Validated categorical slots (fixed assignment order, never cycled):
# slot 1 blue, slot 2 orange, slot 3 aqua, slot 4 yellow.
CATEGORICAL_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")
CATEGORICAL_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500")

#: Single-hue sequential ramp (blue, steps 100 -> 700) for magnitude.
SEQUENTIAL = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Status colors -- reserved for state, always icon + label beside them.
STATUS = {"good": "#0ca30c", "warning": "#fab219",
          "serious": "#ec835a", "critical": "#d03b3b"}

#: Fixed topology -> categorical slot assignment (identity follows the
#: entity: a filtered chart never repaints survivors).
TOPOLOGY_SLOTS = ("fanout", "pool", "pipeline", "diamond")

FUNNEL_STAGES = (
    ("candidate pairs", "pairs_candidates"),
    ("delays injected", "delays_injected"),
    ("near misses observed", "pairs_observed"),
    ("bugs detected", "detected_count"),
)

_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e; --line: #e4e3e0;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a; --cat4: #eda100;
  --good: #0ca30c; --warn: #fab219; --serious: #ec835a; --crit: #d03b3b;
  --band-detectable: #cde2fb; --band-undetectable: #efeeec;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f2f1ef; --ink2: #a5a49f; --line: #3a3938;
    --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70; --cat4: #c98500;
    --band-detectable: #1c2e4a; --band-undetectable: #262523;
  }
}
body { background: var(--surface); color: var(--ink); margin: 2rem auto;
  max-width: 1060px; padding: 0 1rem;
  font: 14px/1.5 system-ui, -apple-system, sans-serif; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.2rem; }
h1, h2 { letter-spacing: -0.01em; }
table { border-collapse: collapse; margin: 0.6rem 0;
  font: 12px/1.5 ui-monospace, monospace; }
th, td { border: 1px solid var(--line); padding: 3px 9px; text-align: right; }
th { color: var(--ink2); font-weight: 600; }
td.l, th.l { text-align: left; }
.muted { color: var(--ink2); }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 1rem 0; }
.tile { border: 1px solid var(--line); border-radius: 8px;
  padding: 10px 16px; min-width: 150px; }
.tile .v { font-size: 1.7rem; font-weight: 650; font-variant-numeric: tabular-nums; }
.tile .k { color: var(--ink2); font-size: 0.8rem; }
.status { font-weight: 600; }
svg { display: block; margin: 0.6rem 0; }
svg text { font: 11px ui-monospace, monospace; fill: var(--ink2); }
svg text.lbl { fill: var(--ink); }
svg .grid { stroke: var(--line); stroke-width: 1; }
.s1 { stroke: var(--cat1); } .s2 { stroke: var(--cat2); }
.s3 { stroke: var(--cat3); } .s4 { stroke: var(--cat4); }
.f1 { fill: var(--cat1); } .f2 { fill: var(--cat2); }
.f3 { fill: var(--cat3); } .f4 { fill: var(--cat4); }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--ink2); }
.legend span::before { content: "■ "; }
.legend .l1::before { color: var(--cat1); } .legend .l2::before { color: var(--cat2); }
.legend .l3::before { color: var(--cat3); } .legend .l4::before { color: var(--cat4); }
details { margin: 0.4rem 0; } summary { color: var(--ink2); cursor: pointer; }
"""


def _e(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _num(value: Any) -> str:
    if value is None:
        return "-"
    number = float(value)
    if number.is_integer():
        return "{:,}".format(int(number))
    return "%.4g" % number


def _rate(value: Optional[float]) -> str:
    return "-" if value is None else "%.0f%%" % (100.0 * value)


# ----------------------------------------------------------------------
# SVG pieces
# ----------------------------------------------------------------------


def _svg_funnel(stages: Sequence[Tuple[str, int]]) -> str:
    """Horizontal funnel: thin bars, 4px rounded data ends, direct
    labels (count + conversion from the previous stage)."""
    width, bar_h, gap, label_w = 960, 22, 12, 190
    top = max((count for _n, count in stages), default=0) or 1
    height = len(stages) * (bar_h + gap) + gap
    parts = ['<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" '
             'aria-label="detection funnel">' % (width, height, width, height)]
    prev = None
    for index, (name, count) in enumerate(stages):
        y = gap + index * (bar_h + gap)
        span = max(2.0, (width - label_w - 140) * (count / top)) if count else 2.0
        conv = "" if prev in (None, 0) else "  (%s of prior)" % _rate(count / prev)
        parts.append('<text x="%d" y="%.0f" text-anchor="end" class="lbl">%s</text>'
                     % (label_w - 10, y + bar_h - 6, _e(name)))
        parts.append(
            '<rect x="%d" y="%d" width="%.1f" height="%d" rx="4" class="f1">'
            '<title>%s: %s%s</title></rect>'
            % (label_w, y, span, bar_h, _e(name), _num(count), _e(conv))
        )
        parts.append('<text x="%.1f" y="%.0f">%s%s</text>'
                     % (label_w + span + 8, y + bar_h - 6, _num(count), _e(conv)))
        prev = count
    parts.append("</svg>")
    return "".join(parts)


def _curve_domain(groups: Dict[str, List[dict]]) -> List[float]:
    edges: List[float] = []
    for bins in groups.values():
        for row in bins:
            if row["hi"] not in edges:
                edges.append(row["hi"])
    return sorted(edges)


def _svg_curves(groups: Dict[str, List[dict]], slots: Sequence[str],
                aria: str) -> str:
    """Detection rate vs. planted-gap bin, one polyline per group.

    Slot order fixes each group's color; the generator's ground-truth
    bands are shaded under the data (with text labels -- shading is
    never the only encoding).
    """
    width, height, pad_l, pad_r, pad_t, pad_b = 960, 240, 60, 20, 16, 36
    plot_w, plot_h = width - pad_l - pad_r, height - pad_t - pad_b
    domain = _curve_domain(groups)
    parts = ['<svg width="%d" height="%d" viewBox="0 0 %d %d" role="img" '
             'aria-label="%s">' % (width, height, width, height, _e(aria))]

    def x_of(index: int) -> float:
        if len(domain) <= 1:
            return pad_l + plot_w / 2.0
        return pad_l + plot_w * index / (len(domain) - 1)

    def y_of(rate: float) -> float:
        return pad_t + plot_h * (1.0 - rate)

    if domain:
        half = (plot_w / max(1, len(domain) - 1)) / 2.0
        detectable = [i for i, hi in enumerate(domain) if hi <= 40.0]
        undetectable = [i for i, hi in enumerate(domain) if hi > 140.0]
        for indices, css, label in (
            (detectable, "var(--band-detectable)", "detectable band (gap ≤ 40ms)"),
            (undetectable, "var(--band-undetectable)", "undetectable band (gap ≥ 140ms)"),
        ):
            if not indices:
                continue
            x0 = max(pad_l, x_of(indices[0]) - half)
            x1 = min(pad_l + plot_w, x_of(indices[-1]) + half)
            parts.append('<rect x="%.1f" y="%d" width="%.1f" height="%d" '
                         'fill="%s"><title>%s</title></rect>'
                         % (x0, pad_t, x1 - x0, plot_h, css, _e(label)))
            parts.append('<text x="%.1f" y="%d">%s</text>'
                         % (x0 + 4, pad_t + 12, _e(label)))
    for rate in (0.0, 0.5, 1.0):
        y = y_of(rate)
        parts.append('<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" class="grid"/>'
                     % (pad_l, y, pad_l + plot_w, y))
        parts.append('<text x="%d" y="%.1f" text-anchor="end">%d%%</text>'
                     % (pad_l - 8, y + 4, int(rate * 100)))
    for index, hi in enumerate(domain):
        label = "&gt;%s" % _num(domain[index - 1]) if hi == float("inf") else "≤%s" % _num(hi)
        parts.append('<text x="%.1f" y="%d" text-anchor="middle">%s</text>'
                     % (x_of(index), height - pad_b + 16, label))
    parts.append('<text x="%d" y="%d" text-anchor="middle">planted gap (virtual ms)</text>'
                 % (pad_l + plot_w // 2, height - 4))

    slot_order = [name for name in slots if name in groups]
    slot_order += [name for name in sorted(groups) if name not in slot_order]
    for slot, name in enumerate(slot_order[:4], start=1):
        points = []
        for row in groups[name]:
            points.append((x_of(domain.index(row["hi"])), y_of(row["rate"]), row))
        if len(points) > 1:
            path = " ".join("%.1f,%.1f" % (x, y) for x, y, _r in points)
            parts.append('<polyline points="%s" fill="none" class="s%d" '
                         'stroke-width="2"/>' % (path, slot))
        for x, y, row in points:
            parts.append(
                '<circle cx="%.1f" cy="%.1f" r="4" class="f%d" stroke="var(--surface)"'
                ' stroke-width="2"><title>%s, gap ≤ %s ms: %s of %s found (%s)'
                '</title></circle>'
                % (x, y, slot, _e(name), _num(row["hi"]), _num(row["found"]),
                   _num(row["planted"]), _rate(row["rate"]))
            )
        if points:
            x, y, _row = points[-1]
            parts.append('<text x="%.1f" y="%.1f" class="lbl">%s</text>'
                         % (min(x + 8, width - pad_r - 4), y - 8, _e(name)))
    parts.append("</svg>")
    legend = "".join('<span class="l%d">%s</span>' % (slot, _e(name))
                     for slot, name in enumerate(slot_order[:4], start=1))
    if len(slot_order) > 1:
        parts.append('<div class="legend">%s</div>' % legend)
    return "".join(parts)


def _bins_table(groups: Dict[str, List[dict]], slots: Sequence[str]) -> str:
    slot_order = [name for name in slots if name in groups]
    slot_order += [name for name in sorted(groups) if name not in slot_order]
    rows = ['<table><tr><th class="l">series</th><th>gap bin (ms)</th>'
            '<th>planted</th><th>found</th><th>rate</th></tr>']
    for name in slot_order:
        for row in groups[name]:
            hi = "&gt;%s" % _num(row["lo"]) if row["hi"] == float("inf") else "≤%s" % _num(row["hi"])
            rows.append('<tr><td class="l">%s</td><td>%s</td><td>%s</td>'
                        '<td>%s</td><td>%s</td></tr>'
                        % (_e(name), hi, _num(row["planted"]),
                           _num(row["found"]), _rate(row["rate"])))
    rows.append("</table>")
    return "".join(rows)


def _heat_cell(value: float, top: float) -> str:
    if top <= 0 or value <= 0:
        return '<td>%s</td>' % _num(value)
    index = min(len(SEQUENTIAL) - 1, int(value / top * (len(SEQUENTIAL) - 1)))
    index = max(3, index)  # ordinal floor: stay readable on light surface
    ink = "#0b0b0b" if index < 7 else "#fcfcfb"
    return ('<td style="background:%s;color:%s">%s</td>'
            % (SEQUENTIAL[index], ink, _num(value)))


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------


def _section_tiles(view, quality: Optional[dict]) -> str:
    curve = (quality or {}).get("curve") or {}
    bands = curve.get("bands", {})
    detectable = bands.get("detectable") or {}
    tiles = [
        ("bugs detected", len(view.detected) if view is not None else 0),
        ("detectable-band rate",
         _rate(detectable.get("rate")) if detectable else "-"),
        ("planted bugs", curve.get("records", 0)),
        ("cells done", "%s / %s" % (_num(view.cells_done), _num(view.cells_total))
         if view is not None else "-"),
    ]
    body = "".join('<div class="tile"><div class="v">%s</div>'
                   '<div class="k">%s</div></div>'
                   % (_e(v if isinstance(v, str) else _num(v)), _e(k))
                   for k, v in tiles)
    return '<div class="tiles">%s</div>' % body


def _section_funnel(view) -> str:
    out = ["<h2>Detection funnel</h2>"]
    if view is None:
        out.append('<p class="muted">no campaign events loaded</p>')
        return "".join(out)
    counts = {
        "pairs_candidates": view.pairs_candidates,
        "delays_injected": view.delays_injected,
        "pairs_observed": view.pairs_observed,
        "detected_count": len(view.detected),
    }
    stages = [(label, counts[key]) for label, key in FUNNEL_STAGES]
    out.append(_svg_funnel(stages))
    out.append('<details><summary>funnel as a table</summary><table>'
               '<tr><th class="l">stage</th><th>count</th></tr>')
    for label, count in stages:
        out.append('<tr><td class="l">%s</td><td>%s</td></tr>' % (_e(label), _num(count)))
    out.append("</table></details>")
    return "".join(out)


def _section_sensitivity(quality: Optional[dict]) -> str:
    out = ["<h2>Sensitivity curves</h2>",
           '<p class="muted">detection rate vs. planted happens-before gap, '
           'reconciled against generator ground truth</p>']
    curve = (quality or {}).get("curve")
    if not curve:
        out.append('<p class="muted">no fuzz workloads with resolvable '
                   'oracles; run <code>repro fuzz --dashboard</code></p>')
        return "".join(out)
    out.append("<h3>by topology</h3>")
    out.append(_svg_curves(curve["by_topology"], TOPOLOGY_SLOTS,
                           "sensitivity by topology"))
    out.append('<details><summary>topology curve as a table</summary>%s</details>'
               % _bins_table(curve["by_topology"], TOPOLOGY_SLOTS))
    out.append("<h3>by bug class</h3>")
    kinds = sorted(curve["by_kind"])
    out.append(_svg_curves(curve["by_kind"], kinds, "sensitivity by bug class"))
    out.append('<details><summary>bug-class curve as a table</summary>%s</details>'
               % _bins_table(curve["by_kind"], kinds))
    bands = curve["bands"]
    out.append('<table><tr><th class="l">ground-truth band</th><th>planted</th>'
               '<th>found</th><th>rate</th></tr>')
    for band in ("detectable", "undetectable"):
        stats = bands[band]
        out.append('<tr><td class="l">%s</td><td>%s</td><td>%s</td><td>%s</td></tr>'
                   % (_e(band), _num(stats["planted"]), _num(stats["found"]),
                      _rate(stats["rate"])))
    out.append("</table>")
    for problem in (quality or {}).get("problems", ()):
        out.append('<p class="status" style="color:var(--warn)">&#9888; %s</p>'
                   % _e(problem))
    return "".join(out)


def _section_attribution(quality: Optional[dict]) -> str:
    out = ["<h2>Delay-budget attribution</h2>",
           '<p class="muted">which sites consumed injection budget; a '
           '&#9888; counterfactual site had skips while sitting on a '
           'bug&#8217;s racing pair</p>']
    attribution = (quality or {}).get("attribution") or []
    if not attribution:
        out.append('<p class="muted">no per-site telemetry loaded '
                   '(run with <code>--obs-dir</code>)</p>')
        return "".join(out)
    top_delay = max(row["delay_ms"] for row in attribution)
    top_skip = float(max(row["skipped"] for row in attribution))
    out.append('<table><tr><th class="l">site</th><th>considered</th>'
               '<th>injected</th><th>delay ms</th><th>decay</th>'
               '<th>interference</th><th>budget</th><th class="l">flag</th></tr>')
    shown = attribution[:40]
    for row in shown:
        flag = ('<span class="status" style="color:var(--warn)">&#9888; '
                'counterfactual</span>' if row["counterfactual"] else "")
        out.append(
            '<tr><td class="l">%s</td><td>%s</td><td>%s</td>%s%s%s%s'
            '<td class="l">%s</td></tr>'
            % (_e(row["site"]), _num(row["considered"]), _num(row["injected"]),
               _heat_cell(row["delay_ms"], top_delay),
               _heat_cell(row["skips"].get("decay", 0), top_skip),
               _heat_cell(row["skips"].get("interference", 0), top_skip),
               _heat_cell(row["skips"].get("budget", 0), top_skip),
               flag)
        )
    out.append("</table>")
    if len(attribution) > len(shown):
        out.append('<p class="muted">%d further site(s) not shown (sorted by '
                   'delay consumed)</p>' % (len(attribution) - len(shown)))
    rollup = (quality or {}).get("rollup")
    out.append("<h3>skip taxonomy</h3>")
    if rollup:
        out.append('<table><tr><th>considered</th><th>injected</th>'
                   '<th>skipped</th><th>decay</th><th>interference</th>'
                   '<th>budget</th><th>counterfactual sites</th></tr>'
                   '<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>'
                   '<td>%s</td><td>%s</td><td>%s</td></tr></table>'
                   % (_num(rollup["considered"]), _num(rollup["injected"]),
                      _num(rollup["skipped"]), _num(rollup["decay"]),
                      _num(rollup["interference"]), _num(rollup["budget"]),
                      _num(rollup["counterfactual_sites"])))
    else:
        out.append('<p class="muted">no injection decisions recorded</p>')
    return "".join(out)


def _section_gaps(snapshot: Optional[dict]) -> str:
    out = ["<h2>Observed near-miss gaps</h2>"]
    hist = (snapshot or {}).get("histograms", {}).get("nearmiss.gap_ms")
    if not hist or not hist.get("count"):
        out.append('<p class="muted">no gap observations in telemetry</p>')
        return "".join(out)
    out.append('<table><tr><th>observations</th><th>p50</th><th>p90</th>'
               '<th>p99</th><th>max</th></tr><tr><td>%s</td><td>%s ms</td>'
               '<td>%s ms</td><td>%s ms</td><td>%s ms</td></tr></table>'
               % (_num(hist["count"]),
                  _num(round(snapshot_percentile(hist, 0.50), 3)),
                  _num(round(snapshot_percentile(hist, 0.90), 3)),
                  _num(round(snapshot_percentile(hist, 0.99), 3)),
                  _num(hist.get("max"))))
    bounds = list(hist.get("buckets", ())) + [float("inf")]
    counts = list(hist.get("bucket_counts", ()))
    top = max(counts) if counts else 0
    out.append('<table><tr><th>gap ≤ ms</th><th>observations</th></tr>')
    lower = 0.0
    for index, bound in enumerate(bounds):
        count = counts[index] if index < len(counts) else 0
        label = "&gt;%s" % _num(lower) if bound == float("inf") else _num(bound)
        out.append('<tr><td>%s</td>%s</tr>' % (label, _heat_cell(count, top)))
        lower = bound
    out.append("</table>")
    return "".join(out)


def _section_census(view) -> str:
    out = ["<h2>Fault &amp; chaos census</h2>"]
    if view is None:
        out.append('<p class="muted">no campaign events loaded</p>')
        return "".join(out)
    out.append('<table><tr><th>retries</th><th>resumed</th>'
               '<th>watchdog kills</th><th>chaos fires</th>'
               '<th>checkpoints</th><th>cache hits</th><th>cache misses</th></tr>'
               '<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td>'
               '<td>%s</td><td>%s</td></tr></table>'
               % (_num(view.retries), _num(view.resumed),
                  _num(view.watchdog_kills), _num(view.chaos_fires),
                  _num(view.checkpoints), _num(view.cache_hits),
                  _num(view.cache_misses)))
    if view.faults:
        top = max(view.faults.values())
        out.append('<table><tr><th class="l">fault kind</th><th>fired</th></tr>')
        for kind in sorted(view.faults):
            out.append('<tr><td class="l">%s</td>%s</tr>'
                       % (_e(kind), _heat_cell(view.faults[kind], top)))
        out.append("</table>")
    else:
        out.append('<p class="muted">no injected faults</p>')
    return "".join(out)


def _section_fuzz(view) -> str:
    from . import campaign as campaign_mod

    out = ["<h2>Generated workloads</h2>"]
    if view is None or not view.fuzz:
        out.append('<p class="muted">no fuzz workloads in this campaign</p>')
        return "".join(out)
    rows = campaign_mod.fuzz_analytics(view)["rows"]
    out.append('<table><tr><th class="l">topology</th><th>workloads</th>'
               '<th>planted</th><th>detectable</th><th>found</th>'
               '<th>rate</th></tr>')
    for row in rows:
        out.append('<tr><td class="l">%s</td><td>%s</td><td>%s</td><td>%s</td>'
                   '<td>%s</td><td>%s</td></tr>'
                   % (_e(row["topology"]), _num(row["workloads"]),
                      _num(row["planted"]), _num(row["detectable"]),
                      _num(row["found"]), _rate(row["detection_rate"])))
    out.append("</table>")
    failed = sum(1 for e in view.fuzz.values() if not e.get("ok", True))
    if failed:
        out.append('<p class="status" style="color:var(--crit)">&#10006; '
                   '%d workload(s) violated an oracle invariant</p>' % failed)
    return "".join(out)


def _section_trend(trend_rows: Sequence[dict]) -> str:
    out = ["<h2>Quality trend</h2>"]
    if not trend_rows:
        out.append('<p class="muted">no time series yet; rows accumulate in '
                   '<code>timeseries.jsonl</code></p>')
        return "".join(out)
    window = list(trend_rows[-20:])
    out.append('<table><tr><th class="l">label</th><th>detectable rate</th>'
               '<th>undetectable rate</th><th>detected</th>'
               '<th>bench regressions</th></tr>')
    for row in window:
        bands = row.get("bands") or {}
        out.append(
            '<tr><td class="l">%s</td><td>%s</td><td>%s</td><td>%s</td>'
            '<td>%s</td></tr>'
            % (_e(row.get("label", "-")),
               _rate((bands.get("detectable") or {}).get("rate")),
               _rate((bands.get("undetectable") or {}).get("rate")),
               _num((row.get("funnel") or {}).get("detected")),
               _num((row.get("bench") or {}).get("regressions", 0)))
        )
    out.append("</table>")
    if len(trend_rows) > len(window):
        out.append('<p class="muted">%d earlier row(s) not shown; see '
                   '<code>repro obs trend</code></p>'
                   % (len(trend_rows) - len(window)))
    return "".join(out)


def render_dashboard(
    view=None,
    quality: Optional[dict] = None,
    snapshot: Optional[dict] = None,
    trend_rows: Sequence[dict] = (),
    title: str = "WAFFLE detection-quality dashboard",
) -> str:
    """The whole document. Every argument optional; every section's
    heading renders regardless (empty data is reported, not hidden)."""
    body = [
        "<h1>%s</h1>" % _e(title),
        '<p class="muted">active delay injection: candidate pairs &#8594; '
        'injected delays &#8594; observed near misses &#8594; detections, '
        'reconciled against generator ground truth</p>',
        _section_tiles(view, quality),
        _section_funnel(view),
        _section_sensitivity(quality),
        _section_attribution(quality),
        _section_gaps(snapshot),
        _section_fuzz(view),
        _section_census(view),
        _section_trend(trend_rows),
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
        "<title>%s</title>\n<style>%s</style>\n</head>\n<body>\n%s\n</body>\n</html>\n"
        % (_e(title), _CSS, "\n".join(body))
    )
