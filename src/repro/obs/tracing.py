"""Span-based structured tracing with JSONL and Chrome trace export.

Two time domains coexist in this reproduction and the tracer keeps them
apart explicitly:

* **wall time** -- how long harness work (a cell, a preparation run, a
  cache lookup) actually took on the host. Spans measure this with
  ``time.perf_counter``.
* **virtual time** -- the simulated clock inside a run. Injection
  decisions and thread schedules happen here; they are recorded as
  *virtual events* attached to a run's telemetry and can be exported as
  a Chrome ``trace_event`` file (chrome://tracing, Perfetto) where each
  run becomes a process row and each simulated thread a track.

Like the metrics registry, the tracer is process-local and buffered;
the owning :class:`~repro.obs.telemetry.TelemetrySession` drains
:meth:`SpanTracer.drain` into the telemetry JSONL on flush.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class Span:
    """One timed operation (wall clock), with free-form attributes."""

    __slots__ = ("name", "category", "start_s", "duration_ms", "attrs")

    def __init__(self, name: str, category: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.category = category
        self.start_s = 0.0
        self.duration_ms = 0.0
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def to_record(self) -> dict:
        record = {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "start_s": round(self.start_s, 6),
            "dur_ms": round(self.duration_ms, 4),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record


class _ActiveSpan:
    """Context manager driving one :class:`Span`."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "SpanTracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span.start_s = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self.span
        span.duration_ms = (time.perf_counter() - span.start_s) * 1000.0
        if exc_type is not None:
            span.set(error=exc_type.__name__)
        self.tracer.finished.append(span)


class _NullSpanContext:
    """Allocation-free stand-in when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpanContext()


class SpanTracer:
    """Collects finished spans until the session drains them."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.finished: List[Span] = []

    def span(self, name: str, category: str = "harness", **attrs: Any):
        """``with tracer.span("cell", table="table4", ...):`` -- times
        the body and buffers the finished span."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, Span(name, category, attrs or None))

    def drain(self) -> List[dict]:
        records = [span.to_record() for span in self.finished]
        self.finished.clear()
        return records


# ----------------------------------------------------------------------
# Chrome trace_event export of virtual-time schedules
# ----------------------------------------------------------------------


def chrome_trace_events(runs: List[dict]) -> dict:
    """Convert run telemetry records into Chrome ``trace_event`` JSON.

    Each run record (see :class:`~repro.obs.telemetry.RunTelemetry`)
    may carry ``vt_threads`` (simulated thread lifetimes) and
    ``vt_delays`` (injected delay intervals), all in virtual
    milliseconds. Each run maps to one trace "process" whose label names
    the workload; threads map to tracks and delays to nested slices on
    the injected thread's track. Timestamps are microseconds as the
    format requires.
    """
    events: List[dict] = []
    for pid, run in enumerate(runs, start=1):
        label = "%s run#%s %s" % (run.get("kind", "run"), run.get("run_seq", pid), run.get("test", ""))
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for thread in run.get("vt_threads", ()):
            tid = thread["tid"]
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread.get("name", "thread-%d" % tid)},
                }
            )
            end = thread.get("end")
            if end is None:
                end = run.get("virtual_ms", thread["start"])
            events.append(
                {
                    "name": thread.get("name", "thread-%d" % tid),
                    "cat": "thread",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": thread["start"] * 1000.0,
                    "dur": max(0.0, (end - thread["start"]) * 1000.0),
                }
            )
        for delay in run.get("vt_delays", ()):
            events.append(
                {
                    "name": "delay@%s" % delay["site"],
                    "cat": "delay",
                    "ph": "X",
                    "pid": pid,
                    "tid": delay["tid"],
                    "ts": delay["start"] * 1000.0,
                    "dur": max(0.0, (delay["end"] - delay["start"]) * 1000.0),
                    "args": {"site": delay["site"]},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
