"""The per-process telemetry session and per-run summaries.

A :class:`TelemetrySession` owns one metrics registry, one span tracer,
a buffer of injection-decision events and a buffer of per-run
:class:`RunTelemetry` summaries, and flushes all of it to the obs
directory:

* ``telemetry-<pid>-<token>.jsonl`` -- append-only event log: one JSON
  object per line, discriminated by ``type`` (``meta`` | ``inject`` |
  ``span`` | ``run``). This is the raw, replayable record of what the
  process did.
* ``summary-<pid>-<token>.json`` -- the final metrics snapshot plus
  session metadata, written atomically via
  :func:`repro.core.persistence.save_record` so a torn write can never
  corrupt aggregation.

The harness's process-pool workers each get their own session (enabled
through the ``WAFFLE_OBS_DIR`` environment variable they inherit), so
``repro obs report`` merges one pair of files per participating
process.

Everything here is observational: sessions never feed values back into
the simulation, so runs stay bit-identical with telemetry on or off.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .tracing import SpanTracer

#: Injection-skip reason tags (the explainability contract): ``decay``
#: -- the probability-decay draw failed; ``interference`` -- an ongoing
#: delay at an interfering site suppressed the injection (section 4.4);
#: ``budget`` -- the location's injection budget is exhausted (decayed
#: to probability 0 and retired) or its delay length is zero.
SKIP_REASONS = ("decay", "interference", "budget")

#: Fault taxonomy tags mirrored from ``repro.harness.faults.FAULT_KINDS``
#: (importing the harness here at module scope would tie the obs layer
#: to the harness package during partial initialization; the guard test
#: in tests/harness/test_faults.py keeps the copies identical).
FAULT_KINDS = ("worker_crash", "hang", "transient_io", "corrupt_record", "deterministic")

#: Bucket bounds for the observed near-miss gap distribution (virtual
#: ms). The default near-miss window is 100 ms, so in-window gaps land
#: below the last bound; a widened window spills into the overflow
#: bucket. Gaps are virtual-time differences, so the histogram sums are
#: deterministic across --jobs values and happens-before engines.
GAP_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


@dataclass
class RunTelemetry:
    """Everything one simulated run did, in summary form.

    ``run_seq`` is a process-local sequence number linking the summary
    to its per-decision ``inject`` events. The injection totals here
    must reconcile exactly with the engine's internal counters -- the
    invariant tests/obs/test_skip_accounting.py guards.
    """

    run_seq: int
    kind: str  # "baseline" | "prep" | "detect" | "online"
    test: str
    seed: int
    wall_ms: float
    virtual_ms: float
    op_count: int
    context_switches: int
    crashed: bool
    timed_out: bool
    # Injection-engine decision accounting.
    considered: int = 0
    injected: int = 0
    total_delay_ms: float = 0.0
    skipped_decay: int = 0
    skipped_interference: int = 0
    skipped_budget: int = 0
    # Near-miss and candidate-set churn.
    pairs_observed: int = 0
    pairs_new: int = 0
    candidates_added: int = 0
    candidates_removed: int = 0
    pruned_parent_child: int = 0
    pruned_hb_inference: int = 0
    candidates_final: int = 0
    # Virtual-time schedule (for the Chrome trace_event view).
    vt_threads: List[Dict[str, Any]] = field(default_factory=list)
    vt_delays: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def skipped_total(self) -> int:
        return self.skipped_decay + self.skipped_interference + self.skipped_budget

    def to_record(self) -> dict:
        # Hand-rolled (not dataclasses.asdict): asdict recurses through
        # and deep-copies the vt_threads/vt_delays dict lists, which
        # made run-summary assembly the hottest obs call on the enabled
        # path. The key set is pinned by tests/obs/test_telemetry.py;
        # the vt lists are already JSON-plain, so sharing them is safe
        # -- they are built fresh per run and never mutated after.
        return {
            "type": "run",
            "run_seq": self.run_seq,
            "kind": self.kind,
            "test": self.test,
            "seed": self.seed,
            "wall_ms": self.wall_ms,
            "virtual_ms": self.virtual_ms,
            "op_count": self.op_count,
            "context_switches": self.context_switches,
            "crashed": self.crashed,
            "timed_out": self.timed_out,
            "considered": self.considered,
            "injected": self.injected,
            "total_delay_ms": self.total_delay_ms,
            "skipped_decay": self.skipped_decay,
            "skipped_interference": self.skipped_interference,
            "skipped_budget": self.skipped_budget,
            "pairs_observed": self.pairs_observed,
            "pairs_new": self.pairs_new,
            "candidates_added": self.candidates_added,
            "candidates_removed": self.candidates_removed,
            "pruned_parent_child": self.pruned_parent_child,
            "pruned_hb_inference": self.pruned_hb_inference,
            "candidates_final": self.candidates_final,
            "vt_threads": self.vt_threads,
            "vt_delays": self.vt_delays,
        }


class TelemetrySession:
    """Process-local telemetry state, flushed to ``directory``.

    Instrumented constructors (injection engines, near-miss trackers,
    caches, the scheduler) bind the session -- or None -- once; with no
    session their hot paths reduce to a single ``is not None`` check.
    """

    #: ``maybe_flush`` batching threshold: buffered records (pending
    #: events plus finished spans) before a flush actually happens. At
    #: per-cell cadence the JSON encode was the largest single item of
    #: enabled-path overhead; batching amortizes it into a few large
    #: appends, with the atexit hook (and the CLI's end-of-command
    #: ``obs.flush()``) landing the tail.
    FLUSH_EVERY = 4096

    def __init__(self, directory: os.PathLike, chrome: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chrome = chrome
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer()
        self.started_unix = time.time()
        token = "%d-%d" % (os.getpid(), int(self.started_unix * 1000) % 1_000_000_000)
        self.events_path = self.directory / ("telemetry-%s.jsonl" % token)
        self.summary_path = self.directory / ("summary-%s.json" % token)
        self._pending: List[dict] = [
            {
                "type": "meta",
                "pid": os.getpid(),
                "started_unix": round(self.started_unix, 3),
            }
        ]
        self._coverage_pending: List[dict] = []
        self._run_seq = 0

        # Pre-bound instruments for the hot layers. Pre-registering also
        # guarantees the counter *names* appear in every summary, which
        # the CI telemetry check asserts.
        registry = self.registry
        self.c_considered = registry.counter("inject.considered")
        self.c_injected = registry.counter("inject.injected")
        self.c_skip = {
            reason: registry.counter("inject.skipped.%s" % reason) for reason in SKIP_REASONS
        }
        self.c_pairs_observed = registry.counter("nearmiss.pairs_observed")
        self.c_pairs_new = registry.counter("nearmiss.pairs_new")
        self.h_gap_ms = registry.histogram("nearmiss.gap_ms", GAP_BUCKETS)
        self.c_cand_added = registry.counter("candidates.added")
        self.c_cand_removed = registry.counter("candidates.removed")
        self.c_pruned_parent_child = registry.counter("candidates.pruned_parent_child")
        self.c_pruned_hb = registry.counter("candidates.pruned_hb_inference")
        self.c_cache_hits = registry.counter("cache.hits")
        self.c_cache_misses = registry.counter("cache.misses")
        self.c_cache_writes = registry.counter("cache.writes")
        self.c_sched_runs = registry.counter("sched.runs")
        self.c_context_switches = registry.counter("sched.context_switches")
        self.g_virtual_ms = registry.gauge("sched.virtual_time_ms")
        self.g_virtual_ms_total = registry.gauge("sched.virtual_time_ms_total")
        self.c_cells = registry.counter("harness.cells")
        self.h_cell_wall_ms = registry.histogram("harness.cell_wall_ms")
        self.c_runs_recorded = registry.counter("telemetry.runs_recorded")
        # Resilience accounting (the campaign supervisor's dialect).
        self.c_faults = {
            kind: registry.counter("faults.%s" % kind) for kind in FAULT_KINDS
        }
        self.c_cells_retried = registry.counter("cells.retried")
        self.c_cells_quarantined = registry.counter("cells.quarantined")
        self.c_cells_resumed = registry.counter("cells.resumed")
        self.c_cache_corrupt = registry.counter("cache.corrupt")

    # -- Event emission (hot-ish; bounded by decision/run counts) -------

    def next_run_seq(self) -> int:
        self._run_seq += 1
        return self._run_seq

    def inject_event(
        self,
        run_seq: int,
        action: str,
        site: str,
        t_ms: float,
        reason: Optional[str] = None,
        length_ms: Optional[float] = None,
        detail: Optional[str] = None,
    ) -> None:
        """One injection decision: ``action`` is ``inject`` or ``skip``;
        skips always carry a ``reason`` tag from :data:`SKIP_REASONS`."""
        record: Dict[str, Any] = {
            "type": "inject",
            "run": run_seq,
            "action": action,
            "site": site,
            "t_ms": round(t_ms, 4),
        }
        if reason is not None:
            record["reason"] = reason
        if length_ms is not None:
            record["len_ms"] = round(length_ms, 4)
        if detail is not None:
            record["detail"] = detail
        self._pending.append(record)

    def decision(
        self,
        run_seq: int,
        site: str,
        t_ms: float,
        reason: Optional[str] = None,
        length_ms: Optional[float] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Count and buffer one injection decision in a single call.

        The fused form of ``c_considered.inc()`` + outcome counter +
        :meth:`inject_event` that the engine's ``decide`` hot path uses:
        ``reason is None`` means an injection (with ``length_ms``), a
        reason tag from :data:`SKIP_REASONS` means a skip. One call per
        decision instead of three keeps the per-decision overhead at one
        dict build plus two counter bumps.
        """
        self.c_considered.inc()
        record: Dict[str, Any] = {
            "type": "inject",
            "run": run_seq,
            "action": "inject" if reason is None else "skip",
            "site": site,
            "t_ms": round(t_ms, 4),
        }
        if reason is None:
            self.c_injected.inc()
            record["len_ms"] = round(length_ms, 4)
        else:
            self.c_skip[reason].inc()
            record["reason"] = reason
        if detail is not None:
            record["detail"] = detail
        self._pending.append(record)

    def record_run(self, run: RunTelemetry) -> None:
        self.c_runs_recorded.inc()
        self._pending.append(run.to_record())

    def queue_coverage(self, record: dict) -> None:
        """Buffer a candidate-pair coverage record until the next flush.

        Coverage records used to be written (one atomic file each) the
        moment a detection cell finished; at per-cell cadence those
        open/rename pairs were a measurable slice of enabled-path
        overhead. Queuing them keeps the file-per-record on-disk layout
        while batching the I/O with everything else.
        """
        self._coverage_pending.append(record)

    # -- Flushing --------------------------------------------------------

    def maybe_flush(self) -> None:
        """Flush only once enough records have accumulated.

        The batching valve for hot callers (the per-cell hook in
        :mod:`repro.harness.parallel`): below the :data:`FLUSH_EVERY`
        threshold this is two ``len`` calls, so frequent call sites do
        not pay JSON-encode and summary-rewrite cost per call. Callers
        that need durability *now* (pool workers about to lose the
        process, end-of-command handlers) use :meth:`flush` directly.
        """
        if len(self._pending) + len(self.tracer.finished) >= self.FLUSH_EVERY:
            self.flush()

    def flush(self) -> None:
        """Append buffered events/spans to the JSONL log and rewrite the
        summary snapshot. Safe to call repeatedly; crash-safe in the
        sense that the JSONL holds everything flushed so far and the
        summary is replaced atomically."""
        records = self._pending
        self._pending = []
        records.extend(self.tracer.drain())
        if records:
            # One buffer, one write: per-record fp.write calls showed up
            # as measurable syscall churn at per-cell flush cadence. All
            # records are hand-built dicts with stable insertion order,
            # so skipping the sort and separator whitespace keeps the
            # output deterministic while roughly halving encode time.
            dumps = json.dumps
            with open(self.events_path, "a") as fp:
                fp.write(
                    "".join(
                        dumps(record, separators=(",", ":")) + "\n" for record in records
                    )
                )
        if self._coverage_pending:
            from .coverage import write_coverage

            queued = self._coverage_pending
            self._coverage_pending = []
            for record in queued:
                write_coverage(record, self.directory)
        from ..core.persistence import save_record

        save_record(
            {
                "pid": os.getpid(),
                "started_unix": round(self.started_unix, 3),
                "runs_recorded": self._run_seq,
                "metrics": self.registry.snapshot(),
            },
            self.summary_path,
        )


def collect_run_telemetry(
    session: TelemetrySession,
    kind: str,
    test: str,
    seed: int,
    wall_ms: float,
    result: Any,
    hook: Any = None,
    scheduler: Any = None,
) -> RunTelemetry:
    """Assemble a :class:`RunTelemetry` from a finished run.

    Duck-typed on purpose: ``result`` is a
    :class:`~repro.sim.scheduler.RunResult`, ``hook`` any
    instrumentation hook (injection hooks expose ``engine``), and
    ``scheduler`` the driving scheduler (for thread lifetimes). Using
    ``getattr`` keeps :mod:`repro.obs` free of core/sim imports.
    """
    engine = getattr(hook, "engine", None)
    tracker = getattr(hook, "_tracker", None)
    run = RunTelemetry(
        run_seq=getattr(engine, "obs_run_seq", 0) or session.next_run_seq(),
        kind=kind,
        test=test,
        seed=seed,
        wall_ms=round(wall_ms, 4),
        virtual_ms=getattr(result, "virtual_time", 0.0),
        op_count=getattr(result, "op_count", 0),
        context_switches=getattr(result, "context_switches", 0),
        crashed=bool(getattr(result, "crashed", False)),
        timed_out=bool(getattr(result, "timed_out", False)),
    )
    if engine is not None:
        ledger = engine.ledger
        run.considered = engine.considered
        run.injected = ledger.count
        run.total_delay_ms = ledger.total_delay_ms
        run.skipped_decay = engine.skipped_decay
        run.skipped_interference = engine.skipped_interference
        run.skipped_budget = engine.skipped_budget
        candidates = engine.candidates
        run.candidates_added = getattr(candidates, "added_total", 0)
        run.candidates_removed = getattr(candidates, "removed_total", 0)
        run.pruned_parent_child = getattr(candidates, "pruned_parent_child", 0)
        run.pruned_hb_inference = getattr(candidates, "pruned_hb_inference", 0)
        run.candidates_final = len(candidates)
        if session.chrome:
            run.vt_delays = [
                {"site": i.site, "tid": i.thread_id, "start": i.start, "end": i.end}
                for i in ledger.history
            ]
    if tracker is not None:
        run.pairs_observed = getattr(tracker, "pairs_observed", 0)
        run.pairs_new = getattr(tracker, "pairs_new", 0)
    if session.chrome and scheduler is not None:
        threads = getattr(scheduler, "threads", {})
        run.vt_threads = [
            {
                "tid": tid,
                "name": thread.name,
                "start": getattr(thread, "spawn_time", 0.0),
                "end": getattr(thread, "end_time", None),
            }
            for tid, thread in threads.items()
        ]
    session.record_run(run)
    return run
