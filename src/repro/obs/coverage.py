"""Coverage observatory: which candidate pairs were actually exercised.

Near-miss tracking proposes pairs, pruning removes them, decay retires
their delay sites, interference skips their injections -- so "Waffle
ran N detection runs" says little about which pairs were ever *tested*
(had a delay injected at their delay location). This module accounts
for exactly that, per session and across sessions:

* ``delayed`` -- at least one delay was injected at the pair's delay
  location during the session;
* ``pruned``  -- the pair was removed from S (happens-before
  inference, or its site's injection budget retired) before any delay
  landed;
* ``planned`` -- the pair survived in S but never had a delay injected
  (decay draws failed, the interference guard skipped it, or its site
  simply never executed again).

Every count reconciles exactly with the engine's internal counters
(same invariant style as ``tests/obs/test_skip_accounting.py``):
statuses partition the pair universe, and ``injected_total`` equals
both the per-site injection sum and the per-run ledger counts.

Like :mod:`repro.obs.dossier`, this module imports ``core`` types and
is therefore imported directly, never via ``repro.obs.__init__``.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Pair coverage statuses, in priority order: a pair that was both
#: delayed and later pruned counts as delayed (it *was* tested).
STATUSES = ("delayed", "pruned", "planned")

RECORD_TYPE = "coverage"


def build_coverage(
    tool: str,
    test: str,
    candidates,
    decay,
    runs: Iterable,
    site_injections: Mapping[str, int],
    bug_found: bool,
) -> dict:
    """Assemble one session's coverage record (JSON-safe).

    ``candidates`` is the session's final CandidateSet (survivors plus
    ``removal_log`` provenance), ``decay`` its DecayState, ``runs`` the
    session's RunRecords, ``site_injections`` the per-delay-site
    injection counts accumulated from each run's ledger history.
    """
    site_injections = dict(site_injections)

    # Universe = surviving pairs + every pair ever removed. A pair
    # removed and re-added appears once, with its surviving identity.
    surviving: Dict[Tuple[str, str, str], Tuple[str, str, str]] = {}
    for pair in candidates:
        surviving[pair.key()] = pair.key()
    removal_reasons: Dict[Tuple[str, str, str], List[str]] = {}
    removal_events: Counter = Counter()
    for key, reason in candidates.removal_log:
        key = tuple(key)
        removal_reasons.setdefault(key, []).append(reason or "untagged")
        removal_events[reason or "untagged"] += 1
    universe = dict.fromkeys(list(surviving) + list(removal_reasons))

    pairs: List[dict] = []
    status_counts = Counter()
    for key in universe:
        kind, delay_site, other_site = key
        delayed_count = site_injections.get(delay_site, 0)
        in_set = key in surviving
        if delayed_count > 0:
            status = "delayed"
        elif not in_set:
            status = "pruned"
        else:
            status = "planned"
        status_counts[status] += 1
        entry = {
            "kind": kind,
            "delay_site": delay_site,
            "other_site": other_site,
            "status": status,
            "in_candidate_set": in_set,
            "delayed_count": delayed_count,
            "removal_reasons": removal_reasons.get(key, []),
            "final_p": round(decay.probability(delay_site), 4),
        }
        pairs.append(entry)

    # Gap provenance only exists for survivors (removal drops it).
    gaps_by_key = {
        pair.key(): (
            len(candidates.observations(pair)),
            round(candidates.max_gap(pair), 4),
        )
        for pair in candidates
    }
    for entry in pairs:
        key = (entry["kind"], entry["delay_site"], entry["other_site"])
        count, max_gap = gaps_by_key.get(key, (0, 0.0))
        entry["gap_count"] = count
        entry["max_gap_ms"] = max_gap

    run_rows = []
    injected_total = 0
    skipped = Counter()
    for record in runs:
        injected_total += record.delays_injected
        skipped["decay"] += record.skipped_decay
        skipped["interference"] += record.skipped_interference
        skipped["budget"] += record.skipped_budget
        run_rows.append(
            {
                "kind": record.kind,
                "index": record.index,
                "delays_injected": record.delays_injected,
                "skipped_decay": record.skipped_decay,
                "skipped_interference": record.skipped_interference,
                "skipped_budget": record.skipped_budget,
                "crashed": record.crashed,
                "bug_found": record.bug_found,
            }
        )

    retired = [site for site in decay.known_sites() if decay.retired(site)]
    return {
        "type": RECORD_TYPE,
        "tool": tool,
        "test": test,
        "bug_found": bug_found,
        "runs": run_rows,
        "pairs": pairs,
        "pairs_total": len(pairs),
        "pairs_delayed": status_counts["delayed"],
        "pairs_pruned": status_counts["pruned"],
        "pairs_planned": status_counts["planned"],
        "pruned_reasons": dict(removal_events),
        "pruned_parent_child": candidates.pruned_parent_child,
        "site_injections": site_injections,
        "injected_total": injected_total,
        "skipped_decay": skipped["decay"],
        "skipped_interference": skipped["interference"],
        "skipped_budget": skipped["budget"],
        "decay": {
            "sites": len(decay.known_sites()),
            "retired": sorted(retired),
            "probabilities": {
                site: round(decay.probability(site), 4)
                for site in sorted(decay.known_sites())
            },
        },
    }


_file_seq = itertools.count()


def write_coverage(record: dict, directory) -> Path:
    """Persist one session's coverage record into an obs directory.

    File-per-record (like summaries) so concurrent ``--jobs`` workers
    never interleave writes; ``repro obs coverage`` globs them back.
    """
    from ..core import persistence

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        "coverage-%d-%d.json" % (os.getpid(), next(_file_seq))
    )
    persistence.save_record(record, path)
    return path


def load_coverage_dir(directory) -> List[dict]:
    """Load every coverage record in an obs directory (sorted by name).

    Tolerant of partially-written files from killed workers: unreadable
    records are skipped (the caller can warn via the empty-vs-found
    counts), matching ``load_obs_dir``'s recovery posture.
    """
    from ..core import persistence

    records: List[dict] = []
    directory = Path(directory)
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("coverage-*.json")):
        try:
            record = persistence.load_record(path)
        except (ValueError, KeyError, OSError):
            continue
        if record.get("type") == RECORD_TYPE:
            records.append(record)
    return records


def reconcile_coverage(record: dict) -> List[str]:
    """Exact-consistency checks over one coverage record.

    Returns human-readable problems (empty = reconciled). These are the
    invariants the acceptance test asserts: statuses partition the pair
    universe, and injections reconcile between the per-site map, the
    per-run ledger counts, and the per-pair delayed flags.
    """
    problems: List[str] = []
    pairs = record.get("pairs", [])
    counted = Counter(entry["status"] for entry in pairs)
    for status in STATUSES:
        declared = record.get("pairs_%s" % status, 0)
        if counted.get(status, 0) != declared:
            problems.append(
                "pairs_%s=%d but %d pairs carry that status"
                % (status, declared, counted.get(status, 0))
            )
    if sum(counted.values()) != record.get("pairs_total", 0):
        problems.append(
            "pairs_total=%d but %d pairs listed"
            % (record.get("pairs_total", 0), sum(counted.values()))
        )
    site_sum = sum(record.get("site_injections", {}).values())
    if site_sum != record.get("injected_total", 0):
        problems.append(
            "injected_total=%d but site_injections sum to %d"
            % (record.get("injected_total", 0), site_sum)
        )
    run_sum = sum(row["delays_injected"] for row in record.get("runs", []))
    if run_sum != record.get("injected_total", 0):
        problems.append(
            "injected_total=%d but run ledgers sum to %d"
            % (record.get("injected_total", 0), run_sum)
        )
    for skip in ("decay", "interference", "budget"):
        run_skips = sum(row["skipped_%s" % skip] for row in record.get("runs", []))
        if run_skips != record.get("skipped_%s" % skip, 0):
            problems.append(
                "skipped_%s=%d but runs sum to %d"
                % (skip, record.get("skipped_%s" % skip, 0), run_skips)
            )
    site_injections = record.get("site_injections", {})
    for entry in pairs:
        injected_here = site_injections.get(entry["delay_site"], 0)
        if (entry["status"] == "delayed") != (injected_here > 0):
            problems.append(
                "pair %s/%s status %r disagrees with %d injections at its site"
                % (
                    entry["delay_site"],
                    entry["other_site"],
                    entry["status"],
                    injected_here,
                )
            )
        if entry["status"] == "pruned" and not entry["removal_reasons"]:
            problems.append(
                "pair %s/%s pruned without a removal-log entry"
                % (entry["delay_site"], entry["other_site"])
            )
    return problems


def merge_coverage(records: Iterable[dict]) -> dict:
    """Cross-session aggregate of coverage records.

    Pair statuses merge by priority (delayed > pruned > planned): a pair
    tested in *any* session counts as covered.
    """
    merged_pairs: Dict[Tuple[str, str, str], dict] = {}
    site_injections: Counter = Counter()
    pruned_reasons: Counter = Counter()
    skipped = Counter()
    sessions = 0
    bugs = 0
    injected_total = 0
    pruned_parent_child = 0
    tools = set()
    tests = set()
    for record in records:
        sessions += 1
        tools.add(record.get("tool", "?"))
        tests.add(record.get("test", "?"))
        bugs += 1 if record.get("bug_found") else 0
        injected_total += record.get("injected_total", 0)
        pruned_parent_child += record.get("pruned_parent_child", 0)
        site_injections.update(record.get("site_injections", {}))
        pruned_reasons.update(record.get("pruned_reasons", {}))
        for skip in ("decay", "interference", "budget"):
            skipped[skip] += record.get("skipped_%s" % skip, 0)
        for entry in record.get("pairs", []):
            key = (entry["kind"], entry["delay_site"], entry["other_site"])
            current = merged_pairs.get(key)
            if current is None:
                merged_pairs[key] = dict(entry)
                merged_pairs[key]["sessions"] = 1
                continue
            current["sessions"] += 1
            current["delayed_count"] += entry["delayed_count"]
            current["max_gap_ms"] = max(current["max_gap_ms"], entry["max_gap_ms"])
            if STATUSES.index(entry["status"]) < STATUSES.index(current["status"]):
                current["status"] = entry["status"]
    status_counts = Counter(entry["status"] for entry in merged_pairs.values())
    return {
        "type": "coverage_merged",
        "sessions": sessions,
        "tools": sorted(tools),
        "tests": sorted(tests),
        "bugs_found": bugs,
        "pairs": [merged_pairs[key] for key in sorted(merged_pairs)],
        "pairs_total": len(merged_pairs),
        "pairs_delayed": status_counts["delayed"],
        "pairs_pruned": status_counts["pruned"],
        "pairs_planned": status_counts["planned"],
        "pruned_reasons": dict(pruned_reasons),
        "pruned_parent_child": pruned_parent_child,
        "site_injections": dict(site_injections),
        "injected_total": injected_total,
        "skipped_decay": skipped["decay"],
        "skipped_interference": skipped["interference"],
        "skipped_budget": skipped["budget"],
    }


def render_coverage(merged: dict, per_session: Optional[List[dict]] = None) -> str:
    """Human-readable coverage digest (``repro obs coverage``)."""
    out: List[str] = []
    out.append("=" * 72)
    out.append("CANDIDATE-PAIR COVERAGE")
    out.append("=" * 72)
    if merged.get("type") == "coverage_merged":
        out.append(
            "sessions: %d  tools: %s  tests: %s  bugs found: %d"
            % (
                merged["sessions"],
                ", ".join(merged["tools"]),
                ", ".join(merged["tests"]),
                merged["bugs_found"],
            )
        )
    else:
        out.append(
            "session: %s :: %s  bug found: %s"
            % (merged.get("tool"), merged.get("test"), merged.get("bug_found"))
        )
    total = merged.get("pairs_total", 0) or 1
    out.append(
        "pairs: %d total | %d delayed (%.0f%%) | %d pruned | %d planned-but-untested"
        % (
            merged.get("pairs_total", 0),
            merged.get("pairs_delayed", 0),
            100.0 * merged.get("pairs_delayed", 0) / total,
            merged.get("pairs_pruned", 0),
            merged.get("pairs_planned", 0),
        )
    )
    out.append(
        "injections: %d total across %d sites; skips: %d decay, %d interference, %d budget"
        % (
            merged.get("injected_total", 0),
            len(merged.get("site_injections", {})),
            merged.get("skipped_decay", 0),
            merged.get("skipped_interference", 0),
            merged.get("skipped_budget", 0),
        )
    )
    reasons = merged.get("pruned_reasons", {})
    if reasons or merged.get("pruned_parent_child"):
        out.append(
            "pruning: %s; parent-child (never entered S): %d"
            % (
                ", ".join("%s=%d" % (k, v) for k, v in sorted(reasons.items()))
                or "none",
                merged.get("pruned_parent_child", 0),
            )
        )
    out.append("")
    out.append(
        "  %-10s %-6s %-34s %-34s %s"
        % ("status", "inj", "delay site", "other site", "kind")
    )
    for entry in sorted(
        merged.get("pairs", []),
        key=lambda e: (STATUSES.index(e["status"]), e["delay_site"]),
    ):
        out.append(
            "  %-10s %-6d %-34s %-34s %s"
            % (
                entry["status"],
                entry["delayed_count"],
                entry["delay_site"],
                entry["other_site"],
                entry["kind"],
            )
        )
    decay = merged.get("decay")
    if decay:
        out.append("")
        out.append(
            "decay: %d known sites, %d retired%s"
            % (
                decay.get("sites", 0),
                len(decay.get("retired", [])),
                (
                    " (%s)" % ", ".join(decay["retired"])
                    if decay.get("retired")
                    else ""
                ),
            )
        )
    if per_session:
        out.append("")
        out.append("per session:")
        for record in per_session:
            out.append(
                "  %-12s %-28s pairs %3d (%d delayed) inj %4d bug=%s"
                % (
                    record.get("tool", "?"),
                    record.get("test", "?"),
                    record.get("pairs_total", 0),
                    record.get("pairs_delayed", 0),
                    record.get("injected_total", 0),
                    record.get("bug_found", False),
                )
            )
    return "\n".join(out)
