"""Run-telemetry subsystem: metrics, tracing, explainable injections.

Waffle's behavior is driven by decisions that used to be invisible at
runtime -- which near-misses became candidates, why a planned delay was
skipped (probability decay vs. the interference set of section 4.4),
what each preparation/detection run actually did. This package makes
every run explainable from emitted data instead of reruns:

* :mod:`repro.obs.metrics` -- counters/gauges/histograms with a
  zero-allocation no-op path when telemetry is disabled;
* :mod:`repro.obs.tracing` -- wall-clock spans (JSONL) plus a Chrome
  ``trace_event`` export of virtual-time schedules;
* :mod:`repro.obs.telemetry` -- the per-process session and the
  per-run :class:`~repro.obs.telemetry.RunTelemetry` summary;
* :mod:`repro.obs.report` -- ``repro obs report``: aggregate an obs
  directory into a human-readable digest;
* :mod:`repro.obs.flightrec` -- a bounded ring buffer of scheduler /
  injection / near-miss events (``WAFFLE_FLIGHTREC``), the raw
  material for bug dossiers;
* :mod:`repro.obs.dossier` -- assemble a :class:`BugDossier` (pair
  provenance, swimlane, minimal replay schedule) when a bug manifests;
* :mod:`repro.obs.coverage` -- per-session and cross-session
  candidate-pair coverage accounting (``repro obs coverage``).

Activation model
----------------
Telemetry is **off by default** and controlled by one process-global
session. ``configure(obs_dir)`` (or the ``WAFFLE_OBS_DIR`` environment
variable, consulted at import) enables it; instrumented constructors
call :func:`session` once and keep the result, so a disabled process
pays only a handful of ``is None`` checks per *run*, not per event --
the bound guarded by ``benchmarks/bench_obs.py``.

The environment variable is also the propagation channel to
``--jobs`` process-pool workers: they inherit it, auto-configure on
import, and flush their own telemetry files at exit, which
``repro obs report`` merges.
"""

from __future__ import annotations

import atexit
import os
from typing import Optional

from . import eventbus  # noqa: F401  (re-export; configures from env below)
from . import flightrec  # noqa: F401  (re-export; configures from env below)
from .eventbus import EventBus  # noqa: F401
from .flightrec import FlightRecorder  # noqa: F401
from .metrics import (  # noqa: F401  (public re-exports)
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .telemetry import SKIP_REASONS, RunTelemetry, TelemetrySession, collect_run_telemetry  # noqa: F401
from .tracing import NULL_SPAN, Span, SpanTracer  # noqa: F401

#: Environment variable holding the default obs directory. Setting it
#: enables telemetry for this process and every child it spawns.
OBS_DIR_ENV = "WAFFLE_OBS_DIR"

_session: Optional[TelemetrySession] = None
_atexit_registered = False
#: Whether the campaign event bus was co-configured by ``configure``
#: (as opposed to standalone via ``WAFFLE_EVENTS_DIR`` or an explicit
#: ``eventbus.configure``); only a co-configured bus is torn down or
#: redirected by this module.
_bus_owned = False


def session() -> Optional[TelemetrySession]:
    """The active session, or None when telemetry is disabled.

    Hot-path contract: bind the result once per constructed object and
    branch on ``is not None``; do not call this per event.
    """
    return _session


def active() -> bool:
    return _session is not None


def configure(obs_dir: os.PathLike, chrome: bool = True) -> TelemetrySession:
    """Enable telemetry, flushing any previous session first.

    Must run before the instrumented objects (engines, trackers,
    caches, schedulers) are constructed -- they bind the session at
    construction time.
    """
    global _session, _atexit_registered, _bus_owned
    if _session is not None:
        _session.flush()
    _session = TelemetrySession(obs_dir, chrome=chrome)
    # The campaign event bus rides along with telemetry: same directory,
    # same durability conventions. An explicit WAFFLE_EVENTS_DIR (or a
    # prior eventbus.configure) keeps its own destination.
    existing = eventbus.bus()
    if _bus_owned or existing is None or existing.directory is None:
        eventbus.configure(obs_dir)
        _bus_owned = True
    if not _atexit_registered:
        atexit.register(_flush_at_exit)
        _atexit_registered = True
    return _session


def disable() -> None:
    """Flush and drop the active session (used by tests and the CLI)."""
    global _session, _bus_owned
    if _session is not None:
        _session.flush()
    _session = None
    if _bus_owned:
        eventbus.disable()
        _bus_owned = False


def flush() -> None:
    if _session is not None:
        _session.flush()
    eventbus.flush()


def _flush_at_exit() -> None:
    # Worker processes in the harness pool exit without an explicit
    # flush call; this hook is what lands their telemetry on disk.
    try:
        flush()
    except Exception:
        pass


def _configure_from_env() -> None:
    obs_dir = os.environ.get(OBS_DIR_ENV)
    if obs_dir:
        configure(obs_dir)


def _reset_after_fork() -> None:
    # A forked pool worker inherits the parent's session object --
    # including its buffered (unflushed) events and its file token.
    # Drop it without flushing (those events are the parent's to write)
    # and open a fresh session keyed by the child's own pid.
    global _session
    if _session is None:
        return
    directory, chrome = _session.directory, _session.chrome
    _session = None
    _session = TelemetrySession(directory, chrome=chrome)


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)

_configure_from_env()
flightrec._configure_from_env()
