"""Real-threads adapter: the unchanged Waffle core over ``threading``.

See DESIGN.md and the module docstrings: this package demonstrates the
paper's section 5 claim that porting Waffle to another runtime only
means swapping the instrumentation layer. The simulator remains the
measurement substrate (the GIL dampens real memory-ordering races).
"""

from .detector import RealDetectionOutcome, RealRunRecord, RealThreadsWaffle
from .runtime import RealThreadsRuntime, TrackedObject, TrackedRef

__all__ = [
    "RealDetectionOutcome",
    "RealRunRecord",
    "RealThreadsWaffle",
    "RealThreadsRuntime",
    "TrackedObject",
    "TrackedRef",
]
