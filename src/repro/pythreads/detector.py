"""Waffle over real threads: the unchanged core, new substrate.

``RealThreadsWaffle.detect`` mirrors :class:`repro.core.detector.Waffle`
-- preparation run, trace analysis, bootstrapped detection runs -- but
each run executes a user callable that spawns genuine ``threading``
threads through a :class:`RealThreadsRuntime`. Every analysis component
(near-miss tracking, vector-clock pruning, delay lengths, interference
set, probability decay) is reused verbatim from :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .. import obs
from ..core.analyzer import InjectionPlan, analyze_trace
from ..core.config import DEFAULT_CONFIG, WaffleConfig
from ..core.delay_policy import DecayState
from ..core.reports import BugReport, build_report
from ..core.runtime import PlannedInjectionHook
from ..core.trace import RecordingHook
from ..sim.errors import NullReferenceError
from ..sim.instrument import NoopHook
from .runtime import RealThreadsRuntime

#: A real-threads workload: receives a runtime, spawns threads through
#: it, joins them, returns when the scenario is over. Exceptions from
#: worker threads are collected by the runtime, not raised here.
RealWorkload = Callable[[RealThreadsRuntime], None]


@dataclass
class RealRunRecord:
    kind: str
    index: int
    wall_time_ms: float
    op_count: int
    delays_injected: int = 0
    crashed: bool = False
    #: Same skip-reason taxonomy as the sim detector's RunRecord, so
    #: real-threads runs are explainable with identical accounting.
    skipped_interference: int = 0
    skipped_decay: int = 0
    skipped_budget: int = 0


@dataclass
class RealDetectionOutcome:
    workload: str
    runs: List[RealRunRecord] = field(default_factory=list)
    reports: List[BugReport] = field(default_factory=list)
    plan: Optional[InjectionPlan] = None

    @property
    def bug_found(self) -> bool:
        return bool(self.reports)

    @property
    def runs_to_expose(self) -> Optional[int]:
        for record in self.runs:
            if record.crashed and self.reports:
                return record.index
        return None


class RealThreadsWaffle:
    """The Figure 3 workflow over real Python threads."""

    name = "waffle-realthreads"

    def __init__(
        self, config: Optional[WaffleConfig] = None, join_timeout_s: float = 30.0
    ):
        # The recording/injection per-op overheads are meaningless on
        # wall-clock time (the real work costs what it costs), so they
        # are zeroed; everything else carries over.
        base = config if config is not None else DEFAULT_CONFIG
        from dataclasses import replace

        self.config = replace(base, record_overhead_ms=0.0, inject_overhead_ms=0.0)
        #: Per-run join deadline; a workload still running past it is a
        #: wedged run, degraded via the HangError path below.
        self.join_timeout_s = join_timeout_s

    def _execute(self, workload: RealWorkload, hook, name: str) -> RealThreadsRuntime:
        from ..harness.faults import HangError

        runtime = RealThreadsRuntime(hook=hook, hb_engine=self.config.hb_engine)
        try:
            workload(runtime)
        except NullReferenceError as exc:
            # A crash on the orchestrating thread itself.
            runtime.failures.append(("main", exc))
        try:
            runtime.join_all(timeout_s=self.join_timeout_s)
        except HangError:
            # join_all already recorded the stuck threads in
            # runtime.failures and marked the flight recorder; the run
            # degrades to "crashed" instead of wedging the campaign.
            pass
        return runtime

    def stress(self, workload: RealWorkload, runs: int = 5, name: str = "real") -> int:
        """Delay-free control runs; returns spontaneous crash count."""
        crashes = 0
        for _ in range(runs):
            runtime = self._execute(workload, NoopHook(), name)
            crashes += bool(runtime.failures)
        return crashes

    def detect(
        self,
        workload: RealWorkload,
        max_detection_runs: int = 5,
        name: str = "real",
    ) -> RealDetectionOutcome:
        outcome = RealDetectionOutcome(workload=name)
        config = self.config
        flight = obs.flightrec.recorder()

        # Preparation run: record, no delays.
        if flight is not None:
            flight.begin_run(kind="prep", test=name, seed=config.seed)
        recorder = RecordingHook(
            record_overhead_ms=0.0, track_vector_clocks=True, hb_engine=config.hb_engine
        )
        runtime = self._execute(workload, recorder, name)
        outcome.runs.append(
            RealRunRecord(
                kind="prep",
                index=1,
                wall_time_ms=runtime.now_ms(),
                op_count=runtime.op_count,
                crashed=bool(runtime.failures),
            )
        )
        plan = analyze_trace(recorder.trace, config)
        outcome.plan = plan

        decay = DecayState(config.decay_lambda)
        for attempt in range(1, max_detection_runs + 1):
            if flight is not None:
                flight.begin_run(kind="detect", test=name, seed=config.seed + attempt)
            hook = PlannedInjectionHook(plan, config, decay, seed=config.seed * 7919 + attempt)
            runtime = self._execute(workload, hook, name)
            crashed = any(isinstance(e, NullReferenceError) for _, e in runtime.failures)
            outcome.runs.append(
                RealRunRecord(
                    kind="detect",
                    index=attempt + 1,
                    wall_time_ms=runtime.now_ms(),
                    op_count=runtime.op_count,
                    delays_injected=hook.delays_injected,
                    crashed=crashed,
                    skipped_interference=hook.engine.skipped_interference,
                    skipped_decay=hook.engine.skipped_decay,
                    skipped_budget=hook.engine.skipped_budget,
                )
            )
            if crashed and hook.delays_injected > 0:
                error = next(e for _, e in runtime.failures if isinstance(e, NullReferenceError))
                outcome.reports.append(
                    build_report(
                        tool=self.name,
                        workload=name,
                        error=error,
                        run_index=attempt + 1,
                        fault_time_ms=runtime.now_ms(),
                        matched_pairs=hook.matched_pairs_for(error),
                        active_delays=[],
                        delays_injected=hook.delays_injected,
                    )
                )
                if config.stop_at_first_bug:
                    break
        return outcome
