"""Real-threads instrumentation runtime.

The simulator (:mod:`repro.sim`) is the evaluation substrate, but
nothing in Waffle's core consumes simulator internals: the analyzers
eat :class:`~repro.sim.instrument.AccessEvent` streams and the
runtimes answer "delay this operation by d ms". This module provides
the same contract over **real Python threads and wall-clock time**, the
way the paper's section 5 describes porting Waffle to another runtime:
swap the instrumentation layer, keep the algorithms.

Caveats (and why the simulator remains the primary substrate): the GIL
serializes bytecode so true memory-ordering races are dampened, and
wall-clock timing is noisy -- gaps must be tens of milliseconds for the
near-miss/delay machinery to act reliably. The adapter demonstrates
end-to-end operation of the unchanged core on real threads; it is not
the measurement vehicle.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs
from ..core.tree_clock import make_clock
from ..core.vector_clock import ThreadVectorClock  # noqa: F401  (re-export)
from ..sim.errors import NullReferenceError, ObjectDisposedError
from ..sim.instrument import (
    AccessEvent,
    AccessType,
    InstrumentationHook,
    Location,
    NoopHook,
    PendingAccess,
)


class TrackedObject:
    """A heap object whose identity the instrumentation reports."""

    _oid_counter = itertools.count(1)
    _oid_lock = threading.Lock()

    def __init__(self, type_name: str = "Object", **fields: Any):
        with TrackedObject._oid_lock:
            self.oid = next(TrackedObject._oid_counter)
        self.type_name = type_name
        self.fields: Dict[str, Any] = dict(fields)
        self.disposed = False

    def __repr__(self) -> str:
        return "<%s #%d%s>" % (self.type_name, self.oid, " (disposed)" if self.disposed else "")


class TrackedRef:
    """A nullable reference slot bound to a :class:`RealThreadsRuntime`.

    All operations go through the runtime so the attached hook sees
    them; dereferencing null (or a disposed object) raises the same
    :class:`NullReferenceError` oracle the simulator uses.
    """

    def __init__(self, runtime: "RealThreadsRuntime", name: str,
                 value: Optional[TrackedObject] = None):
        self._runtime = runtime
        self.name = name
        self.value = value

    def assign(self, obj: Optional[TrackedObject], loc: str) -> None:
        self._runtime._assign(self, obj, loc)

    def dispose(self, loc: str, null_out: bool = False) -> None:
        self._runtime._dispose(self, loc, null_out=null_out)

    def use(self, member: str = "", loc: str = "") -> TrackedObject:
        return self._runtime._use(self, member, loc)

    @property
    def is_null(self) -> bool:
        return self.value is None


class RealThreadsRuntime:
    """Wall-clock instrumentation for real ``threading`` code.

    One runtime drives one run. Threads must be created through
    :meth:`spawn` -- that is where the inheritable-TLS vector-clock
    propagation of section 4.1 happens (real Python threads have no
    inheritable TLS, so the spawn wrapper performs the copy the
    language feature would).
    """

    def __init__(self, hook: Optional[InstrumentationHook] = None, hb_engine: str = "vector"):
        self.hook = hook if hook is not None else NoopHook()
        self.hb_engine = hb_engine
        self._origin = time.monotonic()
        self._lock = threading.Lock()
        self._tid_counter = itertools.count(1)
        self._tids: Dict[int, int] = {}  # threading ident -> dense tid
        self._clocks: Dict[int, Any] = {}  # dense tid -> fork clock
        self._threads: List[threading.Thread] = []
        #: Last instrumented site each thread touched (dense tid ->
        #: site string), so a hang report can say *where* a stuck
        #: thread was last seen, not just that it is stuck.
        self._sites: Dict[int, str] = {}
        #: Exceptions that escaped spawned threads: (thread name, exc).
        self.failures: List[Tuple[str, BaseException]] = []
        self.op_count = 0
        #: Flight-recorder parity with the simulator's scheduler: the
        #: same thread-lifecycle/fault event stream, wall-clock stamped.
        self._fr = obs.flightrec.recorder()
        main_tid = self._register_current_thread(parent_tid=None)
        if self._fr is not None:
            self._fr.record(
                "thread_start", self.now_ms(), tid=main_tid,
                name=threading.current_thread().name, parent=None,
            )

    # ------------------------------------------------------------------
    # Time and identity
    # ------------------------------------------------------------------

    def now_ms(self) -> float:
        return (time.monotonic() - self._origin) * 1000.0

    def _register_current_thread(self, parent_tid: Optional[int]) -> int:
        ident = threading.get_ident()
        with self._lock:
            if ident in self._tids:
                return self._tids[ident]
            tid = next(self._tid_counter)
            self._tids[ident] = tid
            if parent_tid is None:
                self._clocks[tid] = make_clock(self.hb_engine, tid)
            return tid

    def _current_tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
        if tid is None:
            raise RuntimeError(
                "thread not registered with the runtime; create threads via spawn()"
            )
        return tid

    # ------------------------------------------------------------------
    # Thread management (the inheritable-TLS stand-in)
    # ------------------------------------------------------------------

    def spawn(self, target: Callable[[], Any], name: str = "") -> threading.Thread:
        """Start a real thread, propagating the parent's vector clock.

        The clock copy happens on the parent (pre-start), mirroring the
        "TLS region copied at the moment of thread creation" semantics.
        Exceptions escaping the target are captured in :attr:`failures`
        (a crashed worker must fail the run, like an unhandled exception
        tearing down a test process).
        """
        parent_tid = self._current_tid()
        with self._lock:
            parent_clock = self._clocks[parent_tid]

        class _Parcel:
            clock: Optional[ThreadVectorClock] = None
            tid: Optional[int] = None

        parcel = _Parcel()

        def runner():
            ident = threading.get_ident()
            with self._lock:
                self._tids[ident] = parcel.tid
                self._clocks[parcel.tid] = parcel.clock
            failed = False
            try:
                target()
            except BaseException as exc:  # noqa: BLE001 - crash capture
                failed = True
                with self._lock:
                    self.failures.append((thread.name, exc))
                    if self._fr is not None:
                        location = getattr(exc, "location", None)
                        self._fr.record(
                            "fault", self.now_ms(), tid=parcel.tid,
                            thread=thread.name, error=type(exc).__name__,
                            site=location.site if location is not None else None,
                        )
            finally:
                if self._fr is not None:
                    with self._lock:
                        self._fr.record(
                            "thread_end", self.now_ms(), tid=parcel.tid, failed=failed
                        )

        thread = threading.Thread(target=runner, name=name or None, daemon=True)
        with self._lock:
            child_tid = next(self._tid_counter)

        class _FakeThread:
            def __init__(self, tid):
                self.tid = tid

        parcel.tid = child_tid
        parcel.clock = parent_clock.inherit_to(
            _FakeThread(parent_tid), _FakeThread(child_tid)
        )
        self._threads.append(thread)
        if self._fr is not None:
            self._fr.record(
                "thread_start", self.now_ms(), tid=child_tid,
                name=thread.name, parent=parent_tid,
            )
        thread.start()
        return thread

    def join_all(self, timeout_s: float = 30.0) -> None:
        """Join every spawned thread, or raise a structured hang report.

        A thread still alive at the deadline is a wedged run, and
        silently falling through would poison every measurement taken
        afterwards. Instead the deadline raises
        :class:`~repro.harness.faults.HangError` naming each stuck
        thread and the instrumented site it was last seen at, records
        the hang in :attr:`failures` (so detection drivers can degrade
        the run rather than crash), and emits a flight-recorder
        ``hang`` mark for the dossier trail.
        """
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            thread.join(max(0.0, remaining))
        stuck = [thread for thread in self._threads if thread.is_alive()]
        if not stuck:
            return
        from ..harness.faults import HangError

        with self._lock:
            details = []
            for thread in stuck:
                tid = self._tids.get(thread.ident)
                details.append(
                    {"name": thread.name, "tid": tid, "site": self._sites.get(tid)}
                )
            error = HangError(details, timeout_s)
            self.failures.append(("<join_all>", error))
            if self._fr is not None:
                self._fr.record(
                    "hang", self.now_ms(), timeout_s=timeout_s, threads=details
                )
        raise error

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def ref(self, name: str, value: Optional[TrackedObject] = None) -> TrackedRef:
        return TrackedRef(self, name, value)

    def new(self, type_name: str = "Object", **fields: Any) -> TrackedObject:
        return TrackedObject(type_name, **fields)

    # ------------------------------------------------------------------
    # Instrumented operations
    # ------------------------------------------------------------------

    def _instrumented(
        self,
        location: Location,
        access_type: AccessType,
        object_id: int,
        ref_name: str,
        member: str,
        action: Callable[[], Any],
        oid_from_result: bool = False,
    ) -> Any:
        tid = self._current_tid()
        self._sites[tid] = location.site  # last-seen site for hang reports
        pending = PendingAccess(
            location, access_type, object_id, tid, self.now_ms(),
            ref_name=ref_name, member=member,
        )
        with self._lock:
            delay_ms = float(self.hook.before_access(pending) or 0.0)
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)

        with self._lock:
            event = AccessEvent(
                location=location,
                access_type=access_type,
                object_id=object_id,
                thread_id=tid,
                timestamp=self.now_ms(),
                ref_name=ref_name,
                member=member,
                injected_delay=delay_ms,
            )
            self.op_count += 1
            clock = self._clocks.get(tid)
            if clock is not None:
                event.vc_snapshot = clock.capture()
            try:
                result = action()
            except NullReferenceError:
                event.object_id = -1
                self.hook.after_access(event)
                raise
            if oid_from_result and isinstance(result, TrackedObject):
                event.object_id = result.oid
            self.hook.after_access(event)
        return result

    def _assign(self, ref: TrackedRef, obj: Optional[TrackedObject], loc: str) -> None:
        location = Location(loc)
        old = ref.value
        if obj is None:
            if old is None:
                return
            access, object_id = AccessType.DISPOSE, old.oid
        else:
            access, object_id = AccessType.INIT, obj.oid

        def action():
            ref.value = obj

        self._instrumented(location, access, object_id, ref.name, "", action)

    def _dispose(self, ref: TrackedRef, loc: str, null_out: bool = False) -> None:
        location = Location(loc)
        target = ref.value
        if target is None:
            self._use(ref, "Dispose", loc)
            return

        def action():
            target.disposed = True
            if null_out:
                ref.value = None

        self._instrumented(
            location, AccessType.DISPOSE, target.oid, ref.name, "Dispose", action
        )

    def _use(self, ref: TrackedRef, member: str, loc: str) -> TrackedObject:
        location = Location(loc)
        object_id = ref.value.oid if ref.value is not None else -1
        thread_name = threading.current_thread().name

        def action():
            value = ref.value
            if value is None:
                raise NullReferenceError(
                    "null reference %r dereferenced at %s" % (ref.name, location),
                    location=location,
                    ref_name=ref.name,
                    thread_name=thread_name,
                )
            if value.disposed:
                raise ObjectDisposedError(
                    "disposed object %r used through %r at %s" % (value, ref.name, location),
                    location=location,
                    ref_name=ref.name,
                    thread_name=thread_name,
                )
            return value

        return self._instrumented(
            location, AccessType.USE, object_id, ref.name, member, action,
            oid_from_result=True,
        )
