"""``python -m repro`` -- alias for the waffle-repro CLI."""

import sys

from .harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
